"""OPUS-style k-optimal rule discovery (Webb 1995; Webb & Zhang 2005).

Related work (Section 2): Webb et al. observe that the commercial
rule-finding system Magnum Opus — built on the OPUS admissible search —
"can successfully perform the contrast-set mining task" by treating the
group as the rule consequent.  This module implements that baseline:
k-optimal discovery of rules ``itemset -> group`` over categorical data,
ranked by leverage (Magnum Opus's default), with OPUS's admissible
optimistic-estimate pruning:

    leverage(X -> g)  =  P(Xg) - P(X) P(g)
    oe over specialisations X' of X:  P(Xg) (1 - P(g))

(the best specialisation keeps every g-row of X and sheds the rest).

Like STUCCO, it consumes categorical attributes; bin continuous data
first (see :mod:`repro.baselines.discretizers`).  Rules are returned as
:class:`~repro.core.contrast.ContrastPattern` objects so the k-optimal
output can be compared with contrast sets directly — which is exactly
Webb's point.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.contrast import ContrastPattern
from ..core.instrumentation import MiningStats, Stopwatch
from ..core.items import CategoricalItem, Itemset
from ..dataset.table import Dataset

__all__ = ["OpusConfig", "OpusRule", "OpusResult", "opus"]


@dataclass(frozen=True)
class OpusConfig:
    k: int = 100
    max_depth: int = 4
    min_coverage: int = 5
    min_leverage: float = 0.0


@dataclass(frozen=True)
class OpusRule:
    """A rule ``itemset -> target group`` with its statistics."""

    itemset: Itemset
    target: str
    leverage: float
    coverage: int
    target_count: int

    @property
    def confidence(self) -> float:
        return self.target_count / self.coverage if self.coverage else 0.0


@dataclass
class OpusResult:
    rules: list[OpusRule]
    stats: MiningStats

    def top(self, n: int | None = None) -> list[OpusRule]:
        return self.rules if n is None else self.rules[:n]

    def as_patterns(self, dataset: Dataset) -> list[ContrastPattern]:
        """Rule antecedents as contrast patterns (Webb's observation)."""
        from ..core.contrast import evaluate_itemset

        seen = set()
        patterns = []
        for rule in self.rules:
            if rule.itemset in seen:
                continue
            seen.add(rule.itemset)
            patterns.append(evaluate_itemset(rule.itemset, dataset))
        return patterns


class _TopK:
    """Min-heap of the best k rules by leverage."""

    def __init__(self, k: int, floor: float) -> None:
        self.k = k
        self.floor = floor
        self._heap: list[tuple[float, int, OpusRule]] = []
        self._tie = itertools.count()

    @property
    def threshold(self) -> float:
        if len(self._heap) < self.k:
            return self.floor
        return self._heap[0][0]

    def offer(self, rule: OpusRule) -> None:
        if rule.leverage <= self.floor:
            return
        if len(self._heap) < self.k:
            heapq.heappush(
                self._heap, (rule.leverage, next(self._tie), rule)
            )
        elif rule.leverage > self._heap[0][0]:
            heapq.heapreplace(
                self._heap, (rule.leverage, next(self._tie), rule)
            )

    def rules(self) -> list[OpusRule]:
        return [
            rule
            for __, __, rule in sorted(
                self._heap, key=lambda t: (-t[0], t[1])
            )
        ]


def opus(
    dataset: Dataset,
    config: OpusConfig | None = None,
    attributes: Sequence[str] | None = None,
) -> OpusResult:
    """Mine the k best ``itemset -> group`` rules by leverage.

    Runs one OPUS search per group (each group as the consequent), sharing
    a single top-k list, as Magnum Opus's group-comparison recipe does.
    """
    config = config or OpusConfig()
    names = (
        tuple(attributes)
        if attributes is not None
        else dataset.schema.categorical_names
    )
    for name in names:
        if not dataset.attribute(name).is_categorical:
            raise ValueError(
                f"OPUS consumes categorical attributes; {name!r} is "
                "continuous (discretize it first)"
            )

    stats = MiningStats()
    topk = _TopK(config.k, config.min_leverage)
    n_total = dataset.n_rows
    if n_total == 0:
        return OpusResult([], stats)

    # per-item coverage masks, computed once
    items: list[CategoricalItem] = [
        CategoricalItem(name, value)
        for name in names
        for value in dataset.attribute(name).categories
    ]
    item_masks = [item.cover(dataset) for item in items]
    group_codes = np.asarray(dataset.group_codes)

    with Stopwatch(stats):
        for target_index, target in enumerate(dataset.group_labels):
            n_g = dataset.group_sizes[target_index]
            if n_g == 0:
                continue
            p_g = n_g / n_total
            target_mask = group_codes == target_index

            def expand(start, mask, itemset, depth):
                for i in range(start, len(items)):
                    item = items[i]
                    if itemset.item_for(item.attribute) is not None:
                        continue
                    new_mask = mask & item_masks[i]
                    coverage = int(new_mask.sum())
                    stats.partitions_evaluated += 1
                    if coverage < config.min_coverage:
                        stats.spaces_pruned += 1
                        continue
                    target_count = int((new_mask & target_mask).sum())
                    leverage = target_count / n_total - (
                        coverage / n_total
                    ) * p_g
                    new_itemset = itemset.with_item(item)
                    topk.offer(
                        OpusRule(
                            new_itemset,
                            target,
                            leverage,
                            coverage,
                            target_count,
                        )
                    )
                    # OPUS admissible bound: the best specialisation keeps
                    # all target rows and sheds the rest
                    optimistic = (target_count / n_total) * (1.0 - p_g)
                    if (
                        depth + 1 < config.max_depth
                        and optimistic > topk.threshold
                    ):
                        expand(i + 1, new_mask, new_itemset, depth + 1)
                    elif depth + 1 < config.max_depth:
                        stats.spaces_pruned += 1

            expand(
                0,
                np.ones(n_total, dtype=bool),
                Itemset(),
                0,
            )

    return OpusResult(topk.rules(), stats)
