"""STUCCO — Searching and Testing for Understandable Consistent COntrasts
(Bay & Pazzani, 2001).

The canonical categorical contrast-set miner and the engine the paper runs
on top of each global discretizer (MVD / Fayyad / equi-depth bins become
categorical attributes first).  Breadth-first candidate generation with:

* minimum deviation size pruning (no group support above ``delta``),
* expected cell count >= 5 pruning,
* chi-square upper-bound pruning (a node none of whose specialisations can
  reach significance is cut), and
* the Bonferroni alpha ladder across levels.

Output: all large-and-significant contrast sets, optionally truncated to
the top-k by support difference.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from ..core.config import MinerConfig
from ..core.contrast import ContrastPattern, evaluate_itemset
from ..core.instrumentation import MiningStats, Stopwatch
from ..core.items import CategoricalItem, Itemset
from ..core.pipeline import (
    EvaluationContext,
    OptimisticChiSquareRule,
    PruningPipeline,
)
from ..core.stats import AlphaLadder
from ..dataset.table import Dataset

__all__ = ["StuccoConfig", "StuccoResult", "stucco"]

# STUCCO uses the chi-square upper bound as an *expansion gate*, not a
# prune: a failing node is still reported if it is itself a contrast,
# only its specialisations are cut.
_EXPANSION_GATE = OptimisticChiSquareRule()


@dataclass(frozen=True)
class StuccoConfig:
    """STUCCO parameters (defaults follow the paper's setup)."""

    delta: float = 0.1
    alpha: float = 0.05
    max_depth: int = 5
    k: int | None = 100
    min_expected_count: float = 5.0
    use_bonferroni: bool = True


@dataclass
class StuccoResult:
    patterns: list[ContrastPattern]
    stats: MiningStats

    def top(self, n: int | None = None) -> list[ContrastPattern]:
        return self.patterns if n is None else self.patterns[:n]


def stucco(
    dataset: Dataset,
    config: StuccoConfig | None = None,
    attributes: Sequence[str] | None = None,
) -> StuccoResult:
    """Mine categorical contrast sets.

    Continuous attributes are rejected — discretize first (see
    :mod:`repro.baselines.discretizers`).
    """
    config = config or StuccoConfig()
    names = (
        tuple(attributes)
        if attributes is not None
        else dataset.schema.categorical_names
    )
    for name in names:
        if not dataset.attribute(name).is_categorical:
            raise ValueError(
                f"STUCCO handles categorical attributes only; {name!r} is "
                "continuous (discretize it first)"
            )

    stats = MiningStats()
    ladder = AlphaLadder(config.alpha)
    found: list[ContrastPattern] = []
    # STUCCO runs the shared pipeline restricted to its two prune rules
    # (minimum deviation + expected count); the chi-square bound acts as
    # an expansion gate below, and the redundancy/pure-space rules are
    # SDAD-CS additions STUCCO predates.
    pipeline = PruningPipeline(
        MinerConfig(
            delta=config.delta,
            alpha=config.alpha,
            k=config.k if config.k is not None else 100,
            max_tree_depth=config.max_depth,
            min_expected_count=config.min_expected_count,
            use_bonferroni=config.use_bonferroni,
            prune_optimistic=False,
            prune_redundant=False,
            prune_pure_space=False,
        ),
        stats=stats,
    )

    with Stopwatch(stats):
        # level 1 candidates: every attribute value
        frontier: list[Itemset] = [
            Itemset([CategoricalItem(name, value)])
            for name in names
            for value in dataset.attribute(name).categories
        ]
        level = 1
        while frontier and level <= config.max_depth:
            alpha = (
                ladder.alpha_for_level(level, max(1, len(frontier)))
                if config.use_bonferroni
                else config.alpha
            )
            survivors: list[Itemset] = []
            for itemset in frontier:
                stats.partitions_evaluated += 1
                pattern = evaluate_itemset(itemset, dataset, level)
                ctx = EvaluationContext(
                    key=itemset,
                    config=pipeline.config,
                    alpha=alpha,
                    level=level,
                    itemset=itemset,
                    pattern=pattern,
                )
                if pipeline.evaluate(ctx).pruned:
                    continue
                if pattern.is_contrast(config.delta, alpha):
                    found.append(pattern)
                # expand only if some specialisation could be significant
                if pipeline.check_gate(_EXPANSION_GATE, ctx):
                    stats.spaces_pruned += 1
                else:
                    survivors.append(itemset)
            frontier = _next_level(survivors, dataset, names)
            stats.candidates_generated += len(frontier)
            level += 1
        pipeline.publish()

    found.sort(key=lambda p: -p.support_difference)
    if config.k is not None:
        found = found[: config.k]
    return StuccoResult(found, stats)


def _next_level(
    survivors: Sequence[Itemset],
    dataset: Dataset,
    names: Sequence[str],
) -> list[Itemset]:
    """Extend surviving itemsets with values of later attributes.

    Attributes are ordered; an itemset is only extended with attributes
    after its last one, so every candidate is generated exactly once
    (the systematic enumeration of Figure 1).
    """
    order = {name: i for i, name in enumerate(names)}
    out: list[Itemset] = []
    for itemset in survivors:
        last = max(order[a] for a in itemset.attributes)
        for name in names[last + 1:]:
            for value in dataset.attribute(name).categories:
                out.append(itemset.with_item(CategoricalItem(name, value)))
    return out
