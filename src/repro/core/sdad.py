"""SDAD-CS: Supervised Dynamic and Adaptive Discretization for Contrast
Sets (paper Algorithm 1).

Given a categorical context itemset ``c`` and one or more continuous
attributes ``ca``, SDAD-CS discovers contrast patterns whose items span all
of ``c``'s attributes plus every attribute in ``ca``:

1. *top-down* — split every continuous attribute at the median of the rows
   in the current region, form all ``2^|ca|`` combinations of the halves,
   evaluate each, and recurse into spaces whose optimistic estimate
   (Eq. 6-11) still beats the live top-k threshold;
2. *bottom-up* — merge contiguous spaces whose group distributions are not
   statistically different, smallest hyper-volume first, as long as the
   merged space remains a large and significant contrast.

The recursion adapts bin boundaries to the local region (and to the
categorical context), which is what lets it expose local multivariate
interactions that global discretizers miss (Sections 1 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..dataset.table import Dataset
from . import measures
from .batch import BatchEvaluator
from .config import MinerConfig
from .contrast import ContrastPattern
from .instrumentation import MiningStats
from .items import Itemset
from .optimistic import (
    support_difference_estimate,
    support_difference_estimate_batch,
)
from .partition import (
    Space,
    are_contiguous,
    find_combinations,
    full_space,
    merged_space,
    partition_median,
)
from .pipeline import (
    PHASE_SPACE,
    EvaluationContext,
    PruningPipeline,
)
from .pruning import PruneTable, is_pure_space
from .stats import AlphaLadder, chi_square_independence

__all__ = ["SDADResult", "sdad_cs"]


@dataclass
class SDADResult:
    """Output of one SDAD-CS invocation."""

    patterns: list[ContrastPattern] = field(default_factory=list)
    pure_itemsets: list[Itemset] = field(default_factory=list)
    """Itemsets of spaces with PR = 1 — the outer search must not extend
    these with further attributes (pure-space pruning, Section 4.3)."""


class _SDADRun:
    """One top-level SDAD-CS call over a fixed attribute combination."""

    def __init__(
        self,
        dataset: Dataset,
        categorical: Itemset,
        continuous: Sequence[str],
        config: MinerConfig,
        min_interest: float,
        alpha_ladder: AlphaLadder,
        pipeline: PruningPipeline,
        base_level: int = 0,
        known_pure: Sequence[Itemset] = (),
        backend=None,
        evaluator: BatchEvaluator | None = None,
    ) -> None:
        self.dataset = dataset
        self.categorical = categorical
        self.continuous = tuple(continuous)
        self.config = config
        self.min_interest = min_interest
        self.ladder = alpha_ladder
        self.pipeline = pipeline
        self.stats = pipeline.stats
        self.prune_table = pipeline.prune_table
        self.base_level = base_level
        self.known_pure = tuple(known_pure)
        if backend is None:
            # imported lazily to avoid a module cycle with repro.counting
            from ..counting.mask import MaskBackend

            backend = MaskBackend(dataset)
        self.backend = backend
        self.measure = measures.get(config.interest_measure)
        # Vectorized per-frame driver (DESIGN.md §12); None = scalar path.
        # The outer search passes one long-lived evaluator so its
        # dataset-level caches (attribute ranges) span all runs.
        if not config.batch_evaluation:
            self.batch = None
        elif evaluator is not None:
            self.batch = evaluator
        else:
            self.batch = BatchEvaluator(
                dataset, pipeline, self.backend, config.interest_measure
            )
        self.result = SDADResult()
        self.pattern_level = base_level + len(self.continuous)
        self.root_intervals: dict[str, object] = {}
        self.all_contrasts: list[Space] = []

    # -- helpers ---------------------------------------------------------

    def _alpha(self, split_level: int) -> float:
        if not self.config.use_bonferroni:
            return self.config.alpha
        return self.ladder.alpha_for_level(self.base_level + split_level)

    def _pattern_of(self, space: Space) -> ContrastPattern:
        """Wrap a space as a pattern, dropping full-range numeric items.

        After merging, an attribute whose interval grew back to its entire
        observed range constrains nothing; keeping it would only create
        degenerate supersets of the same contrast (e.g. ``noise in
        [min, max] and x <= 5`` duplicating ``x <= 5``).  The SDAD-CS NP
        configuration keeps them: those degenerate variants are part of
        the redundant high-interest population the paper's no-pruning
        comparison deliberately retains.
        """
        itemset = self.categorical
        strip = not self.config.report_all_spaces
        for item in space.numeric_items():
            root = self.root_intervals.get(item.attribute)
            if strip and root is not None and item.interval == root:
                continue
            itemset = itemset.with_item(item)
        return ContrastPattern(
            itemset=itemset,
            counts=tuple(int(c) for c in space.counts),
            group_sizes=self.dataset.group_sizes,
            group_labels=self.dataset.group_labels,
            level=self.pattern_level,
            hypervolume=space.hypervolume,
        )

    def _split_space(self, space: Space) -> list[Space]:
        """``partition`` + ``find_combs`` (Algorithm 1 lines 4-5)."""
        splits = {}
        for name in self.continuous:
            halves = partition_median(
                self.dataset,
                space,
                name,
                self.config.split_statistic,
                fast=self.batch is not None,
            )
            if halves is not None:
                splits[name] = halves
        if not splits:
            return []
        return find_combinations(
            self.dataset,
            space,
            splits,
            self.backend,
            batch_counts=self.batch is not None,
        )

    # -- the recursion ----------------------------------------------------

    def run(self) -> SDADResult:
        self.stats.sdad_calls += 1
        # Packed per-chunk coverage of the categorical context; with a
        # chunked backend the segments are lazy thunks, so chunks are
        # only touched when the recursion actually reads them.
        context_cover = (
            self.backend.cover_of(self.categorical)
            if len(self.categorical)
            else self.backend.full_cover()
        )
        root = full_space(
            self.dataset,
            self.continuous,
            context_cover,
            self.backend,
            ranges=(
                {name: self.batch.range_of(name) for name in self.continuous}
                if self.batch is not None
                else None
            ),
        )
        if root.total_count == 0:
            return self.result
        self.root_intervals = dict(root.intervals)
        self.db_size = root.total_count
        found = self._explore(root, level=1, parent_measure=0.0)
        if self.config.merge and found:
            # Final cross-depth pass: spaces returned from different
            # recursion depths can still be contiguous along one axis
            # (Figure 2: the merged result spans splits of several depths).
            found = self._merge(found)
        patterns = [self._pattern_of(s) for s in found]
        if self.config.report_all_spaces:
            # SDAD-CS NP: additionally emit every contrast space seen
            # during the recursion (parents, Dtemp, unmerged children).
            seen = {p.itemset for p in patterns}
            for space in self.all_contrasts:
                pattern = self._pattern_of(space)
                if pattern.itemset not in seen:
                    seen.add(pattern.itemset)
                    patterns.append(pattern)
        self.result.patterns = patterns
        return self.result

    def _interest_of(self, space: Space) -> float:
        return self.measure(self._pattern_of(space))

    def _explore(
        self,
        region: Space,
        level: int,
        parent_measure: float,
        prefetched: tuple[list[Space], list] | None = None,
    ) -> list[Space]:
        """Recursive body of Algorithm 1.

        Returns contrast spaces found inside ``region``, already merged at
        this frame's granularity; empty when nothing inside beats
        ``parent_measure`` (the caller then considers ``region`` itself).

        The bottom-up merge (lines 26-29) runs in every frame over the
        frame's own contrast spaces before the parent-measure gate is
        applied: two pure sibling half-boxes may individually score below
        their parent yet merge into a region that clearly beats it (this
        is how the walkthrough of Figure 2 arrives at its final panel).

        ``prefetched`` carries this frame's child spaces and their
        verdicts when the parent frame already scored them as part of a
        sibling mega-batch (see below); every verdict is identical to
        what this frame would have computed itself.
        """
        if prefetched is not None:
            spaces, verdicts = prefetched
        else:
            spaces = self._split_space(region)
            verdicts = None
        if not spaces:
            return []
        alpha = self._alpha(level)
        contrasts_here: list[Space] = []
        from_children: list[Space] = []

        if self.batch is not None:
            # Whole-frame batch: lookup table, rule chain, and verdicts
            # for every sibling in one array program.  Sibling keys are
            # distinct and every space-phase rule reads only frame-frozen
            # state, so this reproduces the scalar order exactly.
            if verdicts is None:
                verdicts = self.batch.score_spaces(
                    spaces,
                    categorical=self.categorical,
                    alpha=alpha,
                    level=self.pattern_level,
                    threshold=self.min_interest,
                    known_pure=self.known_pure,
                    region=region,
                    pattern_of=self._pattern_of,
                )
            survivors = [
                (space, verdict)
                for space, verdict in zip(spaces, verdicts)
                if verdict is not None
            ]
        else:
            region_pattern = self._pattern_of(region)
            survivors = []
            for space in spaces:
                if self._can_prune(space, region_pattern, alpha):
                    continue
                self.stats.partitions_evaluated += 1
                survivors.append((space, None))

        # First pass: verdict fields and the recursion decision per
        # surviving space.  Everything here is a pure function of the
        # space and run-frozen state, so hoisting it out of the recursion
        # loop changes no results.  Interests are memoized by object
        # identity — the Dtemp comparisons below would otherwise
        # re-derive them.
        interest_of: dict[int, float] = {}
        plans: list[tuple[Space, object, float, bool, bool, bool]] = []
        opt_ok = self._optimistic_allows_many(
            [space for space, _ in survivors], level
        )
        for k, (space, verdict) in enumerate(survivors):
            pattern = None
            if verdict is None:
                pattern = self._pattern_of(space)
                interest = self.measure(pattern)
                pure = is_pure_space(space.counts)
                is_contrast = pattern.is_contrast(self.config.delta, alpha)
            else:
                interest = (
                    verdict.interest
                    if verdict.interest is not None
                    else self._interest_of(space)
                )
                pure = verdict.pure
                is_contrast = verdict.is_contrast
            interest_of[id(space)] = interest
            recurse = (
                level < self.config.max_split_depth
                and not (pure and self.config.prune_pure_space)
                and opt_ok[k]
            )
            plans.append(
                (space, pattern, interest, pure, is_contrast, recurse)
            )

        # Sibling prefetch (batch mode): split every recursing sibling
        # now and score all their children as one mega-batch.  The child
        # frames then consume their precomputed verdicts in the exact
        # DFS order below — keys within a run are pairwise distinct and
        # known_pure/threshold are run-frozen, so every probe, rule
        # check, and stats increment lands exactly as the sequential
        # per-frame order would (sums and distinct-key table adds are
        # order-independent).
        prefetch: dict[int, tuple[list[Space], list]] = {}
        if self.batch is not None and level < self.config.max_split_depth:
            recursing = [plan[0] for plan in plans if plan[5]]
            if len(recursing) > 1:
                child_lists = [
                    self._split_space(space) for space in recursing
                ]
                frames = [
                    (children, space)
                    for space, children in zip(recursing, child_lists)
                    if children
                ]
                if frames:
                    frame_verdicts = self.batch.score_frames(
                        frames,
                        categorical=self.categorical,
                        alpha=self._alpha(level + 1),
                        level=self.pattern_level,
                        threshold=self.min_interest,
                        known_pure=self.known_pure,
                        pattern_of=self._pattern_of,
                    )
                    for (children, space), verdict_list in zip(
                        frames, frame_verdicts
                    ):
                        prefetch[id(space)] = (children, verdict_list)
                for space, children in zip(recursing, child_lists):
                    if not children:
                        prefetch[id(space)] = ([], [])

        for space, pattern, interest, pure, is_contrast, recurse in plans:
            if is_contrast and self.config.report_all_spaces:
                # NP mode records every contrast space, including ones
                # later superseded by their children or left in Dtemp.
                self.all_contrasts.append(space)

            child_found: list[Space] = []
            if recurse:
                child_found = self._explore(
                    space,
                    level + 1,
                    parent_measure=interest,
                    prefetched=prefetch.get(id(space)),
                )
            if child_found:
                from_children.extend(child_found)
                continue

            if pure and is_contrast:
                if pattern is None:
                    pattern = self._pattern_of(space)
                self.result.pure_itemsets.append(pattern.itemset)
            if is_contrast:
                contrasts_here.append(space)

        if self.config.merge and contrasts_here:
            contrasts_here = self._merge(contrasts_here)

        better: list[Space] = []
        deferred: list[Space] = []  # Dtemp
        for space in contrasts_here:
            interest = interest_of.get(id(space))
            if interest is None:  # merged spaces are new objects
                interest = self._interest_of(space)
            if interest > parent_measure:
                better.append(space)
            else:
                deferred.append(space)
        found = from_children + better
        if found:
            return found + deferred  # Algorithm 1 lines 22-23
        return []

    # Interest measures whose specialisations are bounded by the Eq. 6-11
    # support-difference estimate: the difference itself, and the
    # Surprising Measure (PR <= 1, so oe(PR x Diff) = oe(Diff), Sec. 4.2).
    _DIFF_BOUNDED_MEASURES = frozenset({"support_difference", "surprising"})

    def _optimistic_allows(self, space: Space, level: int) -> bool:
        """Gate on the Eq. 6-11 child-space estimate (lines 12-13).

        Only applies to measures the estimate actually bounds; for purity
        ratio (which any space can drive to 1 in a small enough child) and
        other measures, no admissible interest-based bound exists and the
        recursion is gated by the other pruning rules alone.
        """
        if not self.config.prune_optimistic:
            return True
        if self.config.interest_measure not in self._DIFF_BOUNDED_MEASURES:
            return True
        estimate = support_difference_estimate(
            space.counts,
            self.dataset.group_sizes,
            self.db_size,
            level,
            len(self.continuous),
        )
        return estimate > self.min_interest

    def _optimistic_allows_many(
        self, spaces: list[Space], level: int
    ) -> list[bool]:
        """Per-space :meth:`_optimistic_allows` in one kernel call.

        The gate is a pure function of each space's counts and run-frozen
        state, and the batch estimate is bit-identical per row, so the
        returned list matches the scalar calls element for element.
        """
        if not spaces:
            return []
        if (
            not self.config.prune_optimistic
            or self.config.interest_measure
            not in self._DIFF_BOUNDED_MEASURES
        ):
            return [True] * len(spaces)
        if self.batch is None or len(spaces) == 1:
            return [
                self._optimistic_allows(space, level) for space in spaces
            ]
        estimates = support_difference_estimate_batch(
            np.stack([space.counts for space in spaces]),
            self.dataset.group_sizes,
            self.db_size,
            level,
            len(self.continuous),
        )
        return [bool(e > self.min_interest) for e in estimates]

    def _can_prune(
        self, space: Space, parent: ContrastPattern, alpha: float
    ) -> bool:
        """Algorithm 1 line 7: lookup table + the shared rule pipeline.

        The context's itemset and pattern are lazy: the pure-space rule
        only materialises the itemset when pure regions are known, and the
        redundancy rule only builds the pattern when the parent carries a
        usable direction — matching what the hand-inlined sequence paid.
        """
        key = (self.categorical, space.key())
        if self.pipeline.seen(key):
            return True
        ctx = EvaluationContext(
            key=key,
            config=self.config,
            alpha=alpha,
            level=self.pattern_level,
            phase=PHASE_SPACE,
            threshold=self.min_interest,
            known_pure=self.known_pure,
            counts=space.counts,
            group_sizes=self.dataset.group_sizes,
            total_count=space.total_count,
            itemset_factory=lambda: space.itemset_with(self.categorical),
            pattern_factory=lambda: self._pattern_of(space),
            subset_patterns=(parent,) if parent.total_count > 0 else (),
        )
        return self.pipeline.evaluate(ctx).pruned

    # -- bottom-up merge ---------------------------------------------------

    def _merge(self, spaces: list[Space]) -> list[Space]:
        """Algorithm 1 lines 26-29: merge contiguous similar spaces,
        smallest first, while the result stays large and significant."""
        alpha = self._alpha(1)
        spaces = sorted(spaces, key=lambda s: s.hypervolume)
        merged_any = True
        while merged_any:
            merged_any = False
            for i in range(len(spaces)):
                for j in range(i + 1, len(spaces)):
                    combined = self._try_merge(spaces[i], spaces[j], alpha)
                    if combined is None:
                        continue
                    del spaces[j]
                    del spaces[i]
                    spaces.append(combined)
                    spaces.sort(key=lambda s: s.hypervolume)
                    self.stats.merges_performed += 1
                    merged_any = True
                    break
                if merged_any:
                    break
        return spaces

    def _try_merge(
        self, a: Space, b: Space, alpha: float
    ) -> Space | None:
        if not are_contiguous(a, b):
            return None
        # Similarity: are the two spaces' group distributions the same?
        table = np.vstack([a.counts, b.counts])
        similar = not chi_square_independence(table).significant_at(
            self.config.merge_alpha
        )
        if not similar:
            return None
        combined = merged_space(a, b)
        pattern = self._pattern_of(combined)
        if not pattern.is_contrast(self.config.delta, alpha):
            return None
        return combined


def sdad_cs(
    dataset: Dataset,
    categorical: Itemset,
    continuous: Sequence[str],
    config: MinerConfig | None = None,
    min_interest: float | None = None,
    alpha_ladder: AlphaLadder | None = None,
    stats: MiningStats | None = None,
    prune_table: PruneTable | None = None,
    base_level: int = 0,
    known_pure: Sequence[Itemset] = (),
    backend=None,
    pipeline: PruningPipeline | None = None,
    evaluator: BatchEvaluator | None = None,
) -> SDADResult:
    """Run SDAD-CS for one attribute combination.

    Parameters
    ----------
    dataset:
        The data restricted to the groups of interest.
    categorical:
        Fixed categorical context items (may be empty).
    continuous:
        Continuous attributes to discretize jointly (at least one).
    config:
        Miner configuration; defaults to the paper's setup.
    min_interest:
        Live top-k threshold (``min support`` in Algorithm 1); defaults to
        ``config.delta``.
    alpha_ladder / stats / prune_table / pipeline:
        Shared state when called from the outer search.  The search passes
        its :class:`PruningPipeline` (which owns stats and prune table);
        standalone callers may pass ``stats``/``prune_table`` and a fresh
        pipeline is built around them, publishing per-rule accounting into
        ``stats`` before returning.
    base_level:
        Search-tree level of the categorical context (for the Bonferroni
        ladder).
    known_pure:
        PR = 1 itemsets discovered earlier in the search; boxes inside
        those regions are pruned (pure-space pruning, Section 4.3).
    backend:
        Optional :class:`repro.counting.CountingBackend` that performs all
        support counting (context coverage and per-space group counts);
        defaults to a fresh mask backend.
    evaluator:
        Optional shared :class:`~repro.core.batch.BatchEvaluator` (built
        around the same pipeline and backend) so dataset-level caches
        survive across runs; only consulted when
        ``config.batch_evaluation`` is on.

    Returns
    -------
    SDADResult
        Contrast patterns covering all requested attributes, plus the
        itemsets of pure (PR = 1) spaces for pure-space pruning upstream.
    """
    if not continuous:
        raise ValueError("sdad_cs needs at least one continuous attribute")
    for name in continuous:
        if not dataset.attribute(name).is_continuous:
            raise ValueError(f"attribute {name!r} is not continuous")
    config = config or MinerConfig()
    own_pipeline = pipeline is None
    if pipeline is None:
        pipeline = PruningPipeline(
            config,
            stats=stats if stats is not None else MiningStats(),
            prune_table=(
                prune_table if prune_table is not None else PruneTable()
            ),
        )
    run = _SDADRun(
        dataset,
        categorical,
        tuple(continuous),
        config,
        config.delta if min_interest is None else min_interest,
        alpha_ladder or AlphaLadder(config.alpha),
        pipeline,
        base_level=base_level,
        known_pure=known_pure,
        backend=backend,
        evaluator=evaluator,
    )
    result = run.run()
    if own_pipeline:
        pipeline.publish()
    return result
