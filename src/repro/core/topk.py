"""Top-k contrast list (paper Section 3, "Top-k pattern mining").

Keeping the best ``k`` patterns by interest measure removes the need for a
user-supplied minimum-interest threshold and feeds the optimistic-estimate
pruning: once the list holds ``k`` patterns, its worst interest value is the
live pruning threshold; before that the threshold is ``delta``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

from .contrast import ContrastPattern

__all__ = ["TopKList"]


class TopKList:
    """A bounded best-k collection of contrast patterns.

    Patterns are ranked by a pre-computed interest value.  Duplicate
    itemsets are collapsed (keeping the higher interest).  The structure is
    a min-heap so threshold queries and insertions are O(log k).
    """

    def __init__(self, k: int, delta: float = 0.0) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.delta = delta
        self._heap: list[tuple[float, int, ContrastPattern]] = []
        self._by_itemset: dict = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._by_itemset)

    def __iter__(self) -> Iterator[ContrastPattern]:
        return iter(self.patterns())

    @property
    def threshold(self) -> float:
        """Current minimum interest a new pattern must beat (Algorithm 1's
        ``min support`` input: the k-th best value once full, else delta)."""
        if len(self._by_itemset) < self.k:
            return self.delta
        return self._heap[0][0]

    def would_accept(self, interest: float) -> bool:
        return interest > self.threshold or len(self._by_itemset) < self.k

    def add(self, pattern: ContrastPattern, interest: float) -> bool:
        """Insert a pattern; returns True if it made the list."""
        existing = self._by_itemset.get(pattern.itemset)
        if existing is not None:
            if interest <= existing:
                return False
            self._by_itemset[pattern.itemset] = interest
            # Lazy deletion: the stale heap entry is skipped on pop.
            heapq.heappush(
                self._heap, (interest, next(self._counter), pattern)
            )
            return True
        if len(self._by_itemset) >= self.k and interest <= self.threshold:
            return False
        self._by_itemset[pattern.itemset] = interest
        heapq.heappush(self._heap, (interest, next(self._counter), pattern))
        self._compact()
        return True

    def _compact(self) -> None:
        """Evict overflow and stale entries from the heap."""
        while len(self._by_itemset) > self.k and self._heap:
            interest, _, pattern = heapq.heappop(self._heap)
            current = self._by_itemset.get(pattern.itemset)
            if current is not None and current == interest:
                del self._by_itemset[pattern.itemset]
            # stale entries simply disappear
        while self._heap:
            interest, _, pattern = self._heap[0]
            current = self._by_itemset.get(pattern.itemset)
            if current is None or current != interest:
                heapq.heappop(self._heap)
            else:
                break

    def patterns(self) -> list[ContrastPattern]:
        """Patterns sorted by decreasing interest."""
        seen: set = set()
        ranked: list[tuple[float, int, ContrastPattern]] = []
        for interest, tie, pattern in self._heap:
            current = self._by_itemset.get(pattern.itemset)
            if current is None or current != interest:
                continue
            if pattern.itemset in seen:
                continue
            seen.add(pattern.itemset)
            ranked.append((interest, tie, pattern))
        ranked.sort(key=lambda t: (-t[0], t[1]))
        return [pattern for _, _, pattern in ranked]

    def interests(self) -> dict:
        """Mapping itemset -> interest for the current contents."""
        return dict(self._by_itemset)
