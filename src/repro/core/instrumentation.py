"""Counters for the experiments' cost reporting (paper Table 5).

Table 5 reports wall time and the *number of partitions evaluated* per
miner; every space or candidate whose supports are actually counted bumps
``partitions_evaluated``.  The other counters feed the ablation benches.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "MiningStats",
    "Stopwatch",
    "EndpointStats",
    "ServeMetrics",
    "merge_endpoint_snapshots",
]


@dataclass
class MiningStats:
    """Mutable counters threaded through a mining run."""

    partitions_evaluated: int = 0
    spaces_pruned: int = 0
    sdad_calls: int = 0
    merges_performed: int = 0
    candidates_generated: int = 0
    nodes_expanded: int = 0
    elapsed_seconds: float = 0.0
    counting_backend: str = "mask"
    """Name of the support-counting backend that produced the counts."""
    count_calls: int = 0
    """Raw backend counting calls (itemset and mask group-counts alike)."""
    cache_hits: int = 0
    """Context-coverage cache hits (bitmap backend; 0 for mask)."""
    cache_misses: int = 0
    """Context-coverage cache misses (bitmap backend; 0 for mask)."""
    batch_calls: int = 0
    """``group_counts_batch`` invocations on the counting backend."""
    batched_candidates: int = 0
    """Candidates counted through ``group_counts_batch`` (each also bumps
    ``count_calls`` so scalar and batch drivers report comparable totals)."""
    batch_fallbacks: int = 0
    """Batched candidates that fell back to a per-candidate scalar count
    (backend without a native batch path, or hybrid numeric itemsets)."""
    prune_rule_checks: dict[str, int] = field(default_factory=dict)
    """Per pipeline rule: candidates the rule examined."""
    prune_rule_hits: dict[str, int] = field(default_factory=dict)
    """Per pipeline rule: candidates the rule pruned."""
    prune_rule_seconds: dict[str, float] = field(default_factory=dict)
    """Per pipeline rule: wall time spent inside the rule's check."""
    prune_rule_batched: dict[str, int] = field(default_factory=dict)
    """Per pipeline rule: checks that ran through the batch evaluator."""
    prune_reasons: dict[str, int] = field(default_factory=dict)
    """Unique pruned keys per :class:`PruneReason` name (the Table-4-style
    ablation view; sourced from the prune lookup table)."""
    prune_table_checks: int = 0
    """Prune lookup-table probes (Algorithm 1 lines 7-9)."""
    prune_table_hits: int = 0
    """Probes that found the key already pruned (skipped re-evaluation)."""
    tasks_retried: int = 0
    """Parallel tasks re-dispatched after a failed attempt."""
    task_timeouts: int = 0
    """Task attempts abandoned for exceeding the per-task budget."""
    task_errors: int = 0
    """Task attempts that raised inside a worker (poison-pill shards)."""
    corrupt_results: int = 0
    """Task attempts whose returned result failed validation."""
    worker_crashes: int = 0
    """Pool-breaking worker crashes (``BrokenProcessPool`` events)."""
    pool_restarts: int = 0
    """Times the process pool was rebuilt after breaking."""
    serial_fallbacks: int = 0
    """Tasks re-executed serially in the parent after exhausting retries."""
    tasks_failed: int = 0
    """Tasks that failed permanently (even the serial fallback)."""
    checkpoints_written: int = 0
    """Level-boundary checkpoints persisted during the run."""
    resumed_from_level: int = 0
    """Deepest completed level restored from a checkpoint (0 = fresh run)."""

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of context-cache lookups served from cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merge_from(self, other: "MiningStats") -> None:
        """Accumulate counters from a sub-run (used by the parallel driver)."""
        self.partitions_evaluated += other.partitions_evaluated
        self.spaces_pruned += other.spaces_pruned
        self.sdad_calls += other.sdad_calls
        self.merges_performed += other.merges_performed
        self.candidates_generated += other.candidates_generated
        self.nodes_expanded += other.nodes_expanded
        self.count_calls += other.count_calls
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.batch_calls += other.batch_calls
        self.batched_candidates += other.batched_candidates
        self.batch_fallbacks += other.batch_fallbacks
        for name, value in other.prune_rule_checks.items():
            self.prune_rule_checks[name] = (
                self.prune_rule_checks.get(name, 0) + value
            )
        for name, value in other.prune_rule_hits.items():
            self.prune_rule_hits[name] = (
                self.prune_rule_hits.get(name, 0) + value
            )
        for name, seconds in other.prune_rule_seconds.items():
            self.prune_rule_seconds[name] = (
                self.prune_rule_seconds.get(name, 0.0) + seconds
            )
        for name, value in other.prune_rule_batched.items():
            self.prune_rule_batched[name] = (
                self.prune_rule_batched.get(name, 0) + value
            )
        for name, value in other.prune_reasons.items():
            self.prune_reasons[name] = (
                self.prune_reasons.get(name, 0) + value
            )
        self.prune_table_checks += other.prune_table_checks
        self.prune_table_hits += other.prune_table_hits
        self.tasks_retried += other.tasks_retried
        self.task_timeouts += other.task_timeouts
        self.task_errors += other.task_errors
        self.corrupt_results += other.corrupt_results
        self.worker_crashes += other.worker_crashes
        self.pool_restarts += other.pool_restarts
        self.serial_fallbacks += other.serial_fallbacks
        self.tasks_failed += other.tasks_failed
        self.checkpoints_written += other.checkpoints_written
        # Driver-level marker, not an additive event counter.
        self.resumed_from_level = max(
            self.resumed_from_level, other.resumed_from_level
        )


class Stopwatch:
    """Context manager measuring wall time into ``MiningStats``."""

    def __init__(self, stats: MiningStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stats.elapsed_seconds += time.perf_counter() - self._start


class EndpointStats:
    """Request/latency/error counters for one served endpoint.

    Latencies go into a bounded reservoir (the most recent observations),
    which is enough for the p50/p99 the serving layer reports without
    unbounded memory on a long-lived server.  Thread-safe: the serving
    layer observes from many handler threads at once.
    """

    __slots__ = ("requests", "errors", "total_seconds", "_latencies", "_lock")

    def __init__(self, reservoir: int = 4096) -> None:
        self.requests = 0
        self.errors = 0
        self.total_seconds = 0.0
        self._latencies: deque[float] = deque(maxlen=reservoir)
        self._lock = threading.Lock()

    def observe(self, seconds: float, error: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            self.total_seconds += seconds
            self._latencies.append(seconds)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the reservoir."""
        with self._lock:
            sample = sorted(self._latencies)
        if not sample:
            return 0.0
        rank = max(0, min(len(sample) - 1, int(round(q / 100.0 * (len(sample) - 1)))))
        return sample[rank]

    def snapshot(self) -> dict:
        with self._lock:
            requests = self.requests
            errors = self.errors
            total = self.total_seconds
        return {
            "requests": requests,
            "errors": errors,
            "mean_ms": (total / requests * 1000.0) if requests else 0.0,
            "p50_ms": self.percentile(50.0) * 1000.0,
            "p99_ms": self.percentile(99.0) * 1000.0,
        }


def merge_endpoint_snapshots(snapshots) -> dict:
    """Merge per-endpoint snapshots from several serving processes.

    ``snapshots`` is an iterable of :meth:`ServeMetrics.snapshot` dicts
    (one per worker).  Request and error counts sum exactly — that is
    the invariant the multi-worker hammer test asserts against
    client-observed totals.  ``mean_ms`` merges request-weighted;
    ``p50_ms``/``p99_ms`` cannot be merged exactly from summaries, so
    the merged view reports the worst (max) worker's value as a
    conservative bound (per-worker exact percentiles stay available in
    the unmerged snapshots).
    """
    merged: dict[str, dict] = {}
    weighted_ms: dict[str, float] = {}
    for snapshot in snapshots:
        for name, stats in snapshot.items():
            agg = merged.setdefault(
                name,
                {
                    "requests": 0,
                    "errors": 0,
                    "mean_ms": 0.0,
                    "p50_ms": 0.0,
                    "p99_ms": 0.0,
                },
            )
            requests = int(stats.get("requests", 0))
            agg["requests"] += requests
            agg["errors"] += int(stats.get("errors", 0))
            weighted_ms[name] = weighted_ms.get(name, 0.0) + (
                float(stats.get("mean_ms", 0.0)) * requests
            )
            agg["p50_ms"] = max(agg["p50_ms"], float(stats.get("p50_ms", 0.0)))
            agg["p99_ms"] = max(agg["p99_ms"], float(stats.get("p99_ms", 0.0)))
    for name, agg in merged.items():
        if agg["requests"]:
            agg["mean_ms"] = weighted_ms[name] / agg["requests"]
    return merged


class ServeMetrics:
    """Per-endpoint :class:`EndpointStats`, created on first observation."""

    def __init__(self) -> None:
        self._endpoints: dict[str, EndpointStats] = {}
        self._lock = threading.Lock()

    def endpoint(self, name: str) -> EndpointStats:
        with self._lock:
            stats = self._endpoints.get(name)
            if stats is None:
                stats = self._endpoints[name] = EndpointStats()
            return stats

    def observe(self, name: str, seconds: float, error: bool = False) -> None:
        self.endpoint(name).observe(seconds, error)

    def snapshot(self) -> dict:
        with self._lock:
            names = list(self._endpoints)
        return {name: self._endpoints[name].snapshot() for name in names}
