"""Counters for the experiments' cost reporting (paper Table 5).

Table 5 reports wall time and the *number of partitions evaluated* per
miner; every space or candidate whose supports are actually counted bumps
``partitions_evaluated``.  The other counters feed the ablation benches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["MiningStats", "Stopwatch"]


@dataclass
class MiningStats:
    """Mutable counters threaded through a mining run."""

    partitions_evaluated: int = 0
    spaces_pruned: int = 0
    sdad_calls: int = 0
    merges_performed: int = 0
    candidates_generated: int = 0
    nodes_expanded: int = 0
    elapsed_seconds: float = 0.0
    counting_backend: str = "mask"
    """Name of the support-counting backend that produced the counts."""
    count_calls: int = 0
    """Raw backend counting calls (itemset and mask group-counts alike)."""
    cache_hits: int = 0
    """Context-coverage cache hits (bitmap backend; 0 for mask)."""
    cache_misses: int = 0
    """Context-coverage cache misses (bitmap backend; 0 for mask)."""

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of context-cache lookups served from cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merge_from(self, other: "MiningStats") -> None:
        """Accumulate counters from a sub-run (used by the parallel driver)."""
        self.partitions_evaluated += other.partitions_evaluated
        self.spaces_pruned += other.spaces_pruned
        self.sdad_calls += other.sdad_calls
        self.merges_performed += other.merges_performed
        self.candidates_generated += other.candidates_generated
        self.nodes_expanded += other.nodes_expanded
        self.count_calls += other.count_calls
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses


class Stopwatch:
    """Context manager measuring wall time into ``MiningStats``."""

    def __init__(self, stats: MiningStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stats.elapsed_seconds += time.perf_counter() - self._start
