"""The shared candidate lifecycle: one pruning pipeline for every miner.

Historically each consumer of the paper's pruning strategies (the
level-wise :class:`~repro.core.search.SearchEngine`, the SDAD-CS
recursion, the parallel worker loop, and the STUCCO baseline) hand-copied
the same ordered rule sequence with its own ``PruneTable`` and
``MiningStats`` wiring.  That duplication made per-rule effectiveness
unmeasurable (the paper's Table 4-style ablation) and let the serial and
parallel paths drift apart — the parallel categorical branch was missing
the optimistic and redundancy rules entirely and used a looser alpha.

This module makes candidate evaluation first-class:

* :class:`EvaluationContext` — everything a rule may need to judge one
  candidate: the itemset (or a lazy factory for it), the counted
  per-group supports, the evaluated :class:`ContrastPattern` (lazy), the
  alpha-ladder level, the live top-k threshold, subset patterns for the
  redundancy test, and the pure-region registry.
* :class:`PruneRule` — one pruning strategy as an object: a stable name,
  the :class:`PruneReason` it records, an enablement predicate over
  :class:`MinerConfig` (which is how the SDAD-CS NP ablation flags keep
  working), and the check itself.
* :class:`PruningPipeline` — the ordered, config-driven chain.  It owns
  the prune lookup table and the run's :class:`MiningStats`, counts
  per-rule checks/hits/wall-time, and records every decision, so serial,
  parallel, and backend-swapped runs produce identical prune accounting.

The canonical rule order is the one the paper's cost argument implies:
cheap anti-monotone rules (empty, pure-space, minimum deviation,
expected count) run before the chi-square optimistic gate and the CLT
redundancy test, which both cost a statistics evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Hashable, Mapping, Sequence

from scipy import stats as _scipy_stats

from .config import MinerConfig
from .contrast import ContrastPattern, evaluate_itemset
from .instrumentation import MiningStats
from .items import Itemset
from .optimistic import chi_square_estimate
from .pruning import (
    PruneDecision,
    PruneReason,
    PruneTable,
    expected_count_prunes,
    is_pure_space,
    minimum_deviation_prunes,
    redundant_against_subset,
)

__all__ = [
    "EvaluationContext",
    "PruneRule",
    "EmptyRule",
    "PureSpaceRule",
    "MinimumDeviationRule",
    "ExpectedCountRule",
    "OptimisticChiSquareRule",
    "RedundancyRule",
    "PruningPipeline",
    "RuleStats",
    "CandidateOutcome",
    "default_rules",
    "process_categorical_candidate",
    "format_prune_report",
]

#: Candidate phases.  ``itemset`` candidates are categorical itemsets from
#: the level-wise search (and STUCCO); ``space`` candidates are the numeric
#: boxes of the SDAD-CS recursion.  Some rules only apply to one phase —
#: the chi-square optimistic gate, for instance, bounds categorical
#: specialisations, while SDAD-CS recursion is gated by the Eq. 6-11
#: support-difference estimate instead.
PHASE_ITEMSET = "itemset"
PHASE_SPACE = "space"


@lru_cache(maxsize=4096)
def chi2_critical(alpha: float, dof: int) -> float:
    """Memoized chi-square critical value.

    The optimistic-estimate gate needs the same (alpha, dof) quantile for
    every candidate at a level; caching keeps the scipy call off the hot
    path without changing any result.
    """
    return float(_scipy_stats.chi2.isf(alpha, dof))


class EvaluationContext:
    """Everything a prune rule may need to judge one candidate.

    The expensive members are lazy: ``itemset`` and ``pattern`` can be
    given as factories that run only when a rule actually needs them
    (SDAD-CS spaces, for instance, only materialise a pattern when the
    redundancy rule fires), and ``subset_patterns`` can be a factory that
    resolves the sub-itemset lookups on demand.
    """

    __slots__ = (
        "key",
        "phase",
        "alpha",
        "level",
        "threshold",
        "config",
        "known_pure",
        "counts",
        "group_sizes",
        "total_count",
        "_itemset",
        "_itemset_factory",
        "_pattern",
        "_pattern_factory",
        "_subsets",
        "_subsets_factory",
    )

    def __init__(
        self,
        *,
        key: Hashable,
        config: MinerConfig,
        alpha: float,
        level: int = 1,
        phase: str = PHASE_ITEMSET,
        threshold: float = 0.0,
        known_pure: Sequence[Itemset] = (),
        counts=None,
        group_sizes=None,
        total_count: int | None = None,
        itemset: Itemset | None = None,
        itemset_factory: Callable[[], Itemset] | None = None,
        pattern: ContrastPattern | None = None,
        pattern_factory: Callable[[], ContrastPattern] | None = None,
        subset_patterns: Sequence[ContrastPattern] | None = None,
        subsets_factory: Callable[[], Sequence[ContrastPattern]] | None = None,
    ) -> None:
        self.key = key
        self.config = config
        self.alpha = alpha
        self.level = level
        self.phase = phase
        self.threshold = threshold
        self.known_pure = known_pure
        self.counts = counts
        self.group_sizes = group_sizes
        self.total_count = total_count
        self._itemset = itemset
        self._itemset_factory = itemset_factory
        self._pattern = None
        self._pattern_factory = pattern_factory
        self._subsets = subset_patterns
        self._subsets_factory = subsets_factory
        if pattern is not None:
            self.attach_pattern(pattern)

    @property
    def itemset(self) -> Itemset:
        if self._itemset is None:
            self._itemset = self._itemset_factory()
        return self._itemset

    @property
    def pattern(self) -> ContrastPattern:
        if self._pattern is None:
            self._pattern = self._pattern_factory()
        return self._pattern

    @property
    def subset_patterns(self) -> Sequence[ContrastPattern]:
        if self._subsets is None:
            self._subsets = (
                tuple(self._subsets_factory())
                if self._subsets_factory is not None
                else ()
            )
        return self._subsets

    def attach_pattern(self, pattern: ContrastPattern) -> None:
        """Bind the evaluated pattern (and its counts) to the context."""
        self._pattern = pattern
        self.counts = pattern.counts
        self.group_sizes = pattern.group_sizes
        self.total_count = pattern.total_count

    def _counts_total(self) -> int:
        if self.total_count is None:
            self.total_count = int(sum(self.counts))
        return self.total_count


class PruneRule:
    """One pruning strategy of Sections 3/4.3 as a pipeline stage.

    Subclasses define the stable ``name`` (the per-rule stats key), the
    :class:`PruneReason` recorded in the lookup table, whether the rule
    needs the candidate's evaluated pattern/counts (``needs_pattern`` —
    pattern-free rules can run in the pre-counting ``precheck`` phase),
    and optionally the candidate phases it applies to.
    """

    name: str = "abstract"
    reason: PruneReason = PruneReason.EMPTY
    needs_pattern: bool = True
    phases: tuple[str, ...] | None = None  # None = every phase

    def enabled(self, config: MinerConfig) -> bool:
        return True

    def applies(self, ctx: EvaluationContext) -> bool:
        return self.phases is None or ctx.phase in self.phases

    def check(self, ctx: EvaluationContext) -> bool:
        """True when the candidate should be pruned."""
        raise NotImplementedError


class EmptyRule(PruneRule):
    """No covered rows at all — nothing to test (always enabled)."""

    name = "empty"
    reason = PruneReason.EMPTY

    def check(self, ctx: EvaluationContext) -> bool:
        return ctx._counts_total() == 0


class PureSpaceRule(PruneRule):
    """Candidate lies strictly inside a known PR = 1 region (rule 5).

    Extending a pure contrast can only restate it with extra, redundant
    items (the height/toddler example of Section 4.3), so any candidate
    whose region a shorter pure itemset subsumes is cut.  Needs only the
    itemset, so the search runs it before paying for support counting.
    """

    name = "pure_space"
    reason = PruneReason.PURE_SPACE
    needs_pattern = False

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_pure_space

    def check(self, ctx: EvaluationContext) -> bool:
        known = ctx.known_pure
        if not known:
            return False
        candidate = ctx.itemset
        n = len(candidate)
        return any(
            n > len(pure) and pure.region_subsumes(candidate)
            for pure in known
        )


class MinimumDeviationRule(PruneRule):
    """No group's support exceeds delta (rule 1, anti-monotone)."""

    name = "min_deviation"
    reason = PruneReason.MIN_DEVIATION

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_min_deviation

    def check(self, ctx: EvaluationContext) -> bool:
        return minimum_deviation_prunes(
            ctx.counts, ctx.group_sizes, ctx.config.delta
        )


class ExpectedCountRule(PruneRule):
    """Some expected contingency cell is below the floor (rule 2)."""

    name = "expected_count"
    reason = PruneReason.EXPECTED_COUNT

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_expected_count

    def check(self, ctx: EvaluationContext) -> bool:
        return expected_count_prunes(
            ctx.counts, ctx.group_sizes, ctx.config.min_expected_count
        )


class OptimisticChiSquareRule(PruneRule):
    """No specialisation can reach chi-square significance (rule 3).

    Applies to categorical itemset candidates only: the SDAD-CS recursion
    over numeric spaces is gated by the Eq. 6-11 support-difference
    estimate instead (see ``_SDADRun._optimistic_allows``).
    """

    name = "optimistic"
    reason = PruneReason.OPTIMISTIC_ESTIMATE
    phases = (PHASE_ITEMSET,)

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_optimistic

    def check(self, ctx: EvaluationContext) -> bool:
        bound = chi_square_estimate(ctx.counts, ctx.group_sizes)
        dof = max(1, len(ctx.counts) - 1)
        return bound < chi2_critical(ctx.alpha, dof)


class RedundancyRule(PruneRule):
    """Support difference within the CLT band of a subset (Eq. 14-16)."""

    name = "redundant"
    reason = PruneReason.REDUNDANT

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_redundant

    def check(self, ctx: EvaluationContext) -> bool:
        subsets = ctx.subset_patterns
        if not subsets:
            return False
        pattern = ctx.pattern
        return any(
            redundant_against_subset(pattern, subset, ctx.alpha)
            for subset in subsets
        )


def default_rules() -> tuple[PruneRule, ...]:
    """The canonical rule chain, cheapest first.

    Empty and pure-space are O(1)-ish; minimum deviation and expected
    count are one pass over the group counts; the chi-square optimistic
    gate and the CLT redundancy test each evaluate a statistic, so they
    run last.  The order determines which *reason* a doubly-doomed
    candidate records, never whether it survives.
    """
    return (
        EmptyRule(),
        PureSpaceRule(),
        MinimumDeviationRule(),
        ExpectedCountRule(),
        OptimisticChiSquareRule(),
        RedundancyRule(),
    )


@dataclass
class RuleStats:
    """Per-rule effectiveness counters (checks, hits, wall time)."""

    checks: int = 0
    hits: int = 0
    seconds: float = 0.0

    def snapshot(self) -> "RuleStats":
        return RuleStats(self.checks, self.hits, self.seconds)


class PruningPipeline:
    """Ordered, config-driven chain of prune rules with full accounting.

    One pipeline is built per mining run (or per parallel worker task)
    from :class:`MinerConfig`; it owns the :class:`PruneTable` and writes
    into the run's :class:`MiningStats`.  Every consumer — the level-wise
    search, SDAD-CS, the parallel workers, STUCCO — routes candidates
    through :meth:`seen` / :meth:`precheck` / :meth:`evaluate`, which is
    what guarantees serial, parallel, and backend-swapped runs agree on
    both patterns and prune accounting.
    """

    def __init__(
        self,
        config: MinerConfig | None = None,
        *,
        rules: Sequence[PruneRule] | None = None,
        prune_table: PruneTable | None = None,
        stats: MiningStats | None = None,
        time_rules: bool = True,
    ) -> None:
        self.config = config or MinerConfig()
        self.all_rules = tuple(rules) if rules is not None else default_rules()
        self.rules = tuple(
            rule for rule in self.all_rules if rule.enabled(self.config)
        )
        self.prune_table = prune_table if prune_table is not None else PruneTable()
        self.stats = stats if stats is not None else MiningStats()
        self.time_rules = time_rules
        self.rule_stats: dict[str, RuleStats] = {
            rule.name: RuleStats() for rule in self.rules
        }
        # Hot-path plans: (pattern_free_only, skip_pattern_free, phase) ->
        # tuple of (check, record, reason) with the per-candidate rule
        # filtering and stats-dict lookups resolved once.
        self._plans: dict[tuple[bool, bool, str], tuple] = {}
        self._keep = PruneDecision.keep()
        self._drops = {
            rule.reason: PruneDecision.drop(rule.reason)
            for rule in self.all_rules
        }
        self._published_rules: dict[str, RuleStats] = {}
        self._published_reasons: dict[PruneReason, int] = {}
        self._published_table_checks = 0
        self._published_table_hits = 0

    # ------------------------------------------------------------------
    # The candidate lifecycle
    # ------------------------------------------------------------------

    def seen(self, key: Hashable) -> bool:
        """Probe the prune lookup table (Algorithm 1 lines 7-9)."""
        if self.prune_table.contains(key):
            self.stats.spaces_pruned += 1
            return True
        return False

    def precheck(self, ctx: EvaluationContext) -> PruneDecision:
        """Run the pattern-free rules (before paying for counting)."""
        return self._run(ctx, pattern_free_only=True)

    def evaluate(
        self, ctx: EvaluationContext, *, skip_pattern_free: bool = False
    ) -> PruneDecision:
        """Run the rule chain on an evaluated candidate.

        Pass ``skip_pattern_free=True`` when :meth:`precheck` already ran
        for this candidate, so pattern-free rules are not re-checked.
        """
        return self._run(ctx, skip_pattern_free=skip_pattern_free)

    def _plan(
        self,
        pattern_free_only: bool,
        skip_pattern_free: bool,
        phase: str,
    ) -> tuple:
        key = (pattern_free_only, skip_pattern_free, phase)
        plan = self._plans.get(key)
        if plan is None:
            selected = []
            for rule in self.rules:
                if pattern_free_only and rule.needs_pattern:
                    continue
                if skip_pattern_free and not rule.needs_pattern:
                    continue
                if rule.phases is not None and phase not in rule.phases:
                    continue
                selected.append(
                    (rule.check, self.rule_stats[rule.name], rule.reason)
                )
            plan = self._plans[key] = tuple(selected)
        return plan

    def _run(
        self,
        ctx: EvaluationContext,
        *,
        pattern_free_only: bool = False,
        skip_pattern_free: bool = False,
    ) -> PruneDecision:
        plan = self._plan(pattern_free_only, skip_pattern_free, ctx.phase)
        clock = time.perf_counter if self.time_rules else None
        for check, record, reason in plan:
            record.checks += 1
            if clock is not None:
                start = clock()
                hit = check(ctx)
                record.seconds += clock() - start
            else:
                hit = check(ctx)
            if hit:
                record.hits += 1
                self.prune_table.add(ctx.key, reason)
                self.stats.spaces_pruned += 1
                return self._drops[reason]
        return self._keep

    def check_gate(self, rule: PruneRule, ctx: EvaluationContext) -> bool:
        """Run one rule as a *gate* (counted, but nothing recorded).

        STUCCO uses the optimistic chi-square rule this way: a failing
        node is still reported if it is itself a contrast, only its
        expansion is cut.  The check lands in the per-rule stats under
        ``<name>(gate)`` so gate effectiveness is observable too.
        """
        name = f"{rule.name}(gate)"
        record = self.rule_stats.setdefault(name, RuleStats())
        record.checks += 1
        if self.time_rules:
            start = time.perf_counter()
            hit = rule.check(ctx)
            record.seconds += time.perf_counter() - start
        else:
            hit = rule.check(ctx)
        if hit:
            record.hits += 1
        return hit

    # ------------------------------------------------------------------
    # Publishing into MiningStats
    # ------------------------------------------------------------------

    def publish(self, stats: MiningStats | None = None) -> None:
        """Fold per-rule counters and table reasons into ``stats``.

        Delta semantics (like the counting backends): only what accrued
        since the previous publish is added, so a long-lived pipeline can
        publish into a fresh stats object per slice of work without
        double counting.
        """
        stats = self.stats if stats is None else stats
        for name, record in self.rule_stats.items():
            previous = self._published_rules.get(name)
            d_checks = record.checks - (previous.checks if previous else 0)
            d_hits = record.hits - (previous.hits if previous else 0)
            d_seconds = record.seconds - (
                previous.seconds if previous else 0.0
            )
            stats.prune_rule_checks[name] = (
                stats.prune_rule_checks.get(name, 0) + d_checks
            )
            stats.prune_rule_hits[name] = (
                stats.prune_rule_hits.get(name, 0) + d_hits
            )
            stats.prune_rule_seconds[name] = (
                stats.prune_rule_seconds.get(name, 0.0) + d_seconds
            )
            self._published_rules[name] = record.snapshot()
        reasons = self.prune_table.reason_counts()
        for reason, count in reasons.items():
            delta = count - self._published_reasons.get(reason, 0)
            if delta:
                stats.prune_reasons[reason.name] = (
                    stats.prune_reasons.get(reason.name, 0) + delta
                )
        self._published_reasons = dict(reasons)
        stats.prune_table_checks += (
            self.prune_table.checks - self._published_table_checks
        )
        stats.prune_table_hits += (
            self.prune_table.hits - self._published_table_hits
        )
        self._published_table_checks = self.prune_table.checks
        self._published_table_hits = self.prune_table.hits


# ----------------------------------------------------------------------
# The shared categorical candidate lifecycle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateOutcome:
    """A categorical candidate that survived the pipeline."""

    itemset: Itemset
    pattern: ContrastPattern
    is_contrast: bool
    is_pure: bool
    """True when the candidate is a pure (PR = 1) contrast that must be
    registered in the pure-region registry (pure-space pruning)."""


def process_categorical_candidate(
    itemset: Itemset,
    dataset,
    pipeline: PruningPipeline,
    *,
    alpha: float,
    level: int,
    subset_patterns: Mapping[Itemset, ContrastPattern],
    known_pure: Sequence[Itemset],
    backend=None,
    threshold: float = 0.0,
) -> CandidateOutcome | None:
    """One categorical candidate through the full lifecycle.

    Lookup-table probe, pure-space precheck, support counting, then the
    evaluated rule chain.  Returns ``None`` when the candidate was pruned
    (the pipeline has already recorded why); otherwise the evaluated
    pattern plus its contrast/purity verdicts, which the caller folds
    into its own viable/top-k/pure bookkeeping.  Both the serial
    :class:`~repro.core.search.SearchEngine` and the parallel worker loop
    call this, which is what keeps them byte-identical.
    """
    config = pipeline.config
    if pipeline.seen(itemset):
        return None
    ctx = EvaluationContext(
        key=itemset,
        config=config,
        alpha=alpha,
        level=level,
        itemset=itemset,
        known_pure=known_pure,
        threshold=threshold,
    )
    if pipeline.precheck(ctx).pruned:
        return None
    pipeline.stats.partitions_evaluated += 1
    pattern = evaluate_itemset(itemset, dataset, level, backend=backend)
    ctx.attach_pattern(pattern)

    def subsets() -> list[ContrastPattern]:
        found = []
        for attribute in itemset.attributes:
            subset = subset_patterns.get(itemset.without_attribute(attribute))
            if subset is not None:
                found.append(subset)
        return found

    ctx._subsets_factory = subsets
    if pipeline.evaluate(ctx, skip_pattern_free=True).pruned:
        return None
    is_contrast = pattern.is_contrast(config.delta, alpha)
    is_pure = bool(
        config.prune_pure_space
        and is_contrast
        and is_pure_space(pattern.counts)
    )
    return CandidateOutcome(itemset, pattern, is_contrast, is_pure)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

_RULE_REASONS = {rule.name: rule.reason.name for rule in default_rules()}


def format_prune_report(stats: MiningStats) -> str:
    """Human-readable per-rule effectiveness report (``--explain-prunes``).

    One row per pipeline rule: how many candidates it saw, how many it
    cut, the wall time it cost, and the matching lookup-table reason
    count (unique pruned keys).  The lookup table's own probe/hit tally
    follows — table hits are candidates skipped without any rule running.
    """
    names = list(stats.prune_rule_checks)
    lines = ["Pruning pipeline (rule order = evaluation order):"]
    header = (
        f"  {'rule':<20} {'checks':>9} {'hits':>9} {'hit%':>7} "
        f"{'time(s)':>9} {'table':>7}"
    )
    lines.append(header)
    for name in names:
        checks = stats.prune_rule_checks.get(name, 0)
        hits = stats.prune_rule_hits.get(name, 0)
        seconds = stats.prune_rule_seconds.get(name, 0.0)
        rate = f"{100.0 * hits / checks:.1f}" if checks else "-"
        reason = _RULE_REASONS.get(name)
        table = (
            str(stats.prune_reasons.get(reason, 0))
            if reason is not None
            else "-"
        )
        lines.append(
            f"  {name:<20} {checks:>9} {hits:>9} {rate:>7} "
            f"{seconds:>9.3f} {table:>7}"
        )
    lines.append(
        f"  lookup table: {stats.prune_table_checks} probes, "
        f"{stats.prune_table_hits} hits "
        f"(candidates skipped without re-evaluation)"
    )
    total = sum(stats.prune_rule_hits.values())
    lines.append(
        f"  total pruned: {stats.spaces_pruned} "
        f"({total} by rules, {stats.prune_table_hits} by table)"
    )
    return "\n".join(lines)
