"""The shared candidate lifecycle: one pruning pipeline for every miner.

Historically each consumer of the paper's pruning strategies (the
level-wise :class:`~repro.core.search.SearchEngine`, the SDAD-CS
recursion, the parallel worker loop, and the STUCCO baseline) hand-copied
the same ordered rule sequence with its own ``PruneTable`` and
``MiningStats`` wiring.  That duplication made per-rule effectiveness
unmeasurable (the paper's Table 4-style ablation) and let the serial and
parallel paths drift apart — the parallel categorical branch was missing
the optimistic and redundancy rules entirely and used a looser alpha.

This module makes candidate evaluation first-class:

* :class:`EvaluationContext` — everything a rule may need to judge one
  candidate: the itemset (or a lazy factory for it), the counted
  per-group supports, the evaluated :class:`ContrastPattern` (lazy), the
  alpha-ladder level, the live top-k threshold, subset patterns for the
  redundancy test, and the pure-region registry.
* :class:`PruneRule` — one pruning strategy as an object: a stable name,
  the :class:`PruneReason` it records, an enablement predicate over
  :class:`MinerConfig` (which is how the SDAD-CS NP ablation flags keep
  working), and the check itself.
* :class:`PruningPipeline` — the ordered, config-driven chain.  It owns
  the prune lookup table and the run's :class:`MiningStats`, counts
  per-rule checks/hits/wall-time, and records every decision, so serial,
  parallel, and backend-swapped runs produce identical prune accounting.

The canonical rule order is the one the paper's cost argument implies:
cheap anti-monotone rules (empty, pure-space, minimum deviation,
expected count) run before the chi-square optimistic gate and the CLT
redundancy test, which both cost a statistics evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from scipy import stats as _scipy_stats

from .config import MinerConfig
from .contrast import ContrastPattern, evaluate_itemset
from .instrumentation import MiningStats
from .items import CategoricalItem, Itemset, NumericItem
from .optimistic import chi_square_estimate, chi_square_estimate_batch
from .pruning import (
    PruneDecision,
    PruneReason,
    PruneTable,
    expected_count_prunes,
    is_pure_space,
    minimum_deviation_prunes,
    redundant_against_subset,
    redundant_against_subset_batch,
)

__all__ = [
    "EvaluationContext",
    "EvaluationBatch",
    "PruneRule",
    "EmptyRule",
    "PureSpaceRule",
    "MinimumDeviationRule",
    "ExpectedCountRule",
    "OptimisticChiSquareRule",
    "RedundancyRule",
    "PruningPipeline",
    "RuleStats",
    "CandidateOutcome",
    "default_rules",
    "process_categorical_candidate",
    "format_prune_report",
]

#: Candidate phases.  ``itemset`` candidates are categorical itemsets from
#: the level-wise search (and STUCCO); ``space`` candidates are the numeric
#: boxes of the SDAD-CS recursion.  Some rules only apply to one phase —
#: the chi-square optimistic gate, for instance, bounds categorical
#: specialisations, while SDAD-CS recursion is gated by the Eq. 6-11
#: support-difference estimate instead.
PHASE_ITEMSET = "itemset"
PHASE_SPACE = "space"


@lru_cache(maxsize=4096)
def chi2_critical(alpha: float, dof: int) -> float:
    """Memoized chi-square critical value.

    The optimistic-estimate gate needs the same (alpha, dof) quantile for
    every candidate at a level; caching keeps the scipy call off the hot
    path without changing any result.
    """
    return float(_scipy_stats.chi2.isf(alpha, dof))


class EvaluationContext:
    """Everything a prune rule may need to judge one candidate.

    The expensive members are lazy: ``itemset`` and ``pattern`` can be
    given as factories that run only when a rule actually needs them
    (SDAD-CS spaces, for instance, only materialise a pattern when the
    redundancy rule fires), and ``subset_patterns`` can be a factory that
    resolves the sub-itemset lookups on demand.
    """

    __slots__ = (
        "key",
        "phase",
        "alpha",
        "level",
        "threshold",
        "config",
        "known_pure",
        "counts",
        "group_sizes",
        "total_count",
        "_itemset",
        "_itemset_factory",
        "_pattern",
        "_pattern_factory",
        "_subsets",
        "_subsets_factory",
    )

    def __init__(
        self,
        *,
        key: Hashable,
        config: MinerConfig,
        alpha: float,
        level: int = 1,
        phase: str = PHASE_ITEMSET,
        threshold: float = 0.0,
        known_pure: Sequence[Itemset] = (),
        counts=None,
        group_sizes=None,
        total_count: int | None = None,
        itemset: Itemset | None = None,
        itemset_factory: Callable[[], Itemset] | None = None,
        pattern: ContrastPattern | None = None,
        pattern_factory: Callable[[], ContrastPattern] | None = None,
        subset_patterns: Sequence[ContrastPattern] | None = None,
        subsets_factory: Callable[[], Sequence[ContrastPattern]] | None = None,
    ) -> None:
        self.key = key
        self.config = config
        self.alpha = alpha
        self.level = level
        self.phase = phase
        self.threshold = threshold
        self.known_pure = known_pure
        self.counts = counts
        self.group_sizes = group_sizes
        self.total_count = total_count
        self._itemset = itemset
        self._itemset_factory = itemset_factory
        self._pattern = None
        self._pattern_factory = pattern_factory
        self._subsets = subset_patterns
        self._subsets_factory = subsets_factory
        if pattern is not None:
            self.attach_pattern(pattern)

    @property
    def itemset(self) -> Itemset:
        if self._itemset is None:
            self._itemset = self._itemset_factory()
        return self._itemset

    @property
    def pattern(self) -> ContrastPattern:
        if self._pattern is None:
            self._pattern = self._pattern_factory()
        return self._pattern

    @property
    def subset_patterns(self) -> Sequence[ContrastPattern]:
        if self._subsets is None:
            self._subsets = (
                tuple(self._subsets_factory())
                if self._subsets_factory is not None
                else ()
            )
        return self._subsets

    def attach_pattern(self, pattern: ContrastPattern) -> None:
        """Bind the evaluated pattern (and its counts) to the context."""
        self._pattern = pattern
        self.counts = pattern.counts
        self.group_sizes = pattern.group_sizes
        self.total_count = pattern.total_count

    def _counts_total(self) -> int:
        if self.total_count is None:
            self.total_count = int(sum(self.counts))
        return self.total_count


class EvaluationBatch:
    """All candidates of one (level, combo) as a single array program.

    Where :class:`EvaluationContext` carries one candidate, a batch
    carries N: the stacked ``(N, n_groups)`` counts matrix, the shared
    alpha/level/config, and lazily-derived arrays (totals, supports) the
    vectorized rules share.  Per-candidate :class:`EvaluationContext`
    objects are only materialised — through ``context_factory`` — when a
    rule without a vectorized form falls back to its scalar ``check``.

    ``counts`` may be ``None`` for the pre-counting precheck batch
    (pattern-free rules only).  ``shared_subset_factory`` supplies the one
    subset pattern every candidate is compared against in the SDAD-CS
    space phase (the parent region); it is invoked at most once.
    ``spaces``/``categorical`` carry the SDAD-CS frame's boxes and shared
    categorical context so space-geometry rules (pure-space subsumption)
    can run without materialising per-candidate itemsets.
    """

    __slots__ = (
        "keys",
        "phase",
        "config",
        "alpha",
        "level",
        "threshold",
        "known_pure",
        "counts",
        "group_sizes",
        "spaces",
        "categorical",
        "shared_subset_groups",
        "_sizes_f",
        "_totals",
        "_supports",
        "_shared_subset",
        "_shared_subset_factory",
        "_context_factory",
        "_contexts",
    )

    _MISSING = object()

    def __init__(
        self,
        *,
        keys: Sequence[Hashable],
        config: MinerConfig,
        alpha: float,
        phase: str = PHASE_ITEMSET,
        level: int = 1,
        threshold: float = 0.0,
        known_pure: Sequence[Itemset] = (),
        counts: np.ndarray | None = None,
        group_sizes: Sequence[int] | None = None,
        spaces: Sequence | None = None,
        categorical: Itemset | None = None,
        context_factory: Callable[[int], EvaluationContext] | None = None,
        shared_subset_factory: Callable[[], ContrastPattern | None]
        | None = None,
        shared_subset_groups: Sequence[
            tuple[np.ndarray, Callable[[], ContrastPattern | None]]
        ]
        | None = None,
    ) -> None:
        self.keys = list(keys)
        self.phase = phase
        self.config = config
        self.alpha = alpha
        self.level = level
        self.threshold = threshold
        self.known_pure = known_pure
        self.spaces = spaces
        self.categorical = categorical
        # Multi-frame batches: (row positions, lazy parent pattern) per
        # SDAD-CS frame, so the redundancy rule can compare each child
        # against its own parent region.
        self.shared_subset_groups = shared_subset_groups
        self.counts = (
            None if counts is None else np.asarray(counts, dtype=np.int64)
        )
        self.group_sizes = (
            tuple(group_sizes) if group_sizes is not None else None
        )
        self._sizes_f = None
        self._totals = None
        self._supports = None
        self._shared_subset = EvaluationBatch._MISSING
        self._shared_subset_factory = shared_subset_factory
        self._context_factory = context_factory
        self._contexts: dict[int, EvaluationContext] = {}

    @property
    def size(self) -> int:
        return len(self.keys)

    @property
    def sizes_f(self) -> np.ndarray:
        if self._sizes_f is None:
            self._sizes_f = np.asarray(self.group_sizes, dtype=np.float64)
        return self._sizes_f

    @property
    def totals(self) -> np.ndarray:
        """Per-candidate covered-row totals (int64)."""
        if self._totals is None:
            self._totals = self.counts.sum(axis=1)
        return self._totals

    @property
    def supports(self) -> np.ndarray:
        """Per-candidate support rows — exactly
        ``ContrastPattern.supports`` per element (Eq. 1)."""
        if self._supports is None:
            counts = self.counts.astype(np.float64)
            sizes = self.sizes_f
            self._supports = np.divide(
                counts, sizes[None, :], out=np.zeros_like(counts),
                where=(sizes > 0)[None, :],
            )
        return self._supports

    @property
    def shared_subset(self) -> ContrastPattern | None:
        if self._shared_subset is EvaluationBatch._MISSING:
            self._shared_subset = (
                self._shared_subset_factory()
                if self._shared_subset_factory is not None
                else None
            )
        return self._shared_subset

    def context(self, i: int) -> EvaluationContext:
        """Per-candidate context for scalar-fallback rules (memoized)."""
        ctx = self._contexts.get(i)
        if ctx is None:
            ctx = self._contexts[i] = self._context_factory(i)
        return ctx


class PruneRule:
    """One pruning strategy of Sections 3/4.3 as a pipeline stage.

    Subclasses define the stable ``name`` (the per-rule stats key), the
    :class:`PruneReason` recorded in the lookup table, whether the rule
    needs the candidate's evaluated pattern/counts (``needs_pattern`` —
    pattern-free rules can run in the pre-counting ``precheck`` phase),
    and optionally the candidate phases it applies to.

    Rules may additionally override :meth:`check_batch` to judge a whole
    :class:`EvaluationBatch` as one boolean mask; the base implementation
    falls back to the scalar :meth:`check` per candidate, so every rule —
    including third-party ones that predate the batch engine — works
    under the batch evaluator unchanged.
    """

    name: str = "abstract"
    reason: PruneReason = PruneReason.EMPTY
    needs_pattern: bool = True
    phases: tuple[str, ...] | None = None  # None = every phase

    def enabled(self, config: MinerConfig) -> bool:
        return True

    def applies(self, ctx: EvaluationContext) -> bool:
        return self.phases is None or ctx.phase in self.phases

    def check(self, ctx: EvaluationContext) -> bool:
        """True when the candidate should be pruned."""
        raise NotImplementedError

    def check_batch(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        """Prune mask over ``batch`` candidates ``idx`` (True = prune).

        Default: the scalar :meth:`check` per still-alive candidate.
        Overrides must return, for each index, exactly what ``check``
        would on the equivalent context — bit-identical accounting
        depends on it.
        """
        return np.fromiter(
            (self.check(batch.context(i)) for i in idx),
            dtype=bool,
            count=len(idx),
        )


class EmptyRule(PruneRule):
    """No covered rows at all — nothing to test (always enabled)."""

    name = "empty"
    reason = PruneReason.EMPTY

    def check(self, ctx: EvaluationContext) -> bool:
        return ctx._counts_total() == 0

    def check_batch(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        return batch.totals[idx] == 0


class PureSpaceRule(PruneRule):
    """Candidate lies strictly inside a known PR = 1 region (rule 5).

    Extending a pure contrast can only restate it with extra, redundant
    items (the height/toddler example of Section 4.3), so any candidate
    whose region a shorter pure itemset subsumes is cut.  Needs only the
    itemset, so the search runs it before paying for support counting.
    """

    name = "pure_space"
    reason = PruneReason.PURE_SPACE
    needs_pattern = False

    def __init__(self) -> None:
        # One-slot memo for the space-phase decomposition: its inputs
        # (known_pure, categorical context, box axes) are frozen for a
        # whole SDAD-CS run, and runs are sequential.
        self._frame_key: tuple | None = None
        self._frame_numeric: list[list] | tuple | None = None

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_pure_space

    def check(self, ctx: EvaluationContext) -> bool:
        known = ctx.known_pure
        if not known:
            return False
        candidate = ctx.itemset
        n = len(candidate)
        return any(
            n > len(pure) and pure.region_subsumes(candidate)
            for pure in known
        )

    def check_batch(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        if not batch.known_pure:
            # No registered pure regions: the rule can never fire.
            return np.zeros(len(idx), dtype=bool)
        if batch.phase == PHASE_SPACE and batch.spaces is not None:
            return self._check_spaces(batch, idx)
        return super().check_batch(batch, idx)

    def _check_spaces(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        """Frame-shared subsumption over an SDAD-CS space batch.

        A sibling's candidate itemset is the frame's categorical context
        plus one numeric item per box axis, so for each pure region the
        categorical-part match (and the ``n > len(pure)`` guard) is
        decided once per frame; only interval containment along the box
        axes varies per sibling.  Result per index is exactly what the
        scalar :meth:`check` returns on the materialised itemset.
        """
        categorical = batch.categorical
        spaces = batch.spaces
        out = np.zeros(len(idx), dtype=bool)
        if not len(idx):
            return out
        axes = spaces[int(idx[0])].intervals
        known = batch.known_pure
        if not isinstance(known, tuple):
            known = tuple(known)
        # known_pure, the categorical context and the box axes are frozen
        # for a whole SDAD-CS run, so the pure-region decomposition below
        # is computed once per run and replayed for every sibling batch.
        key = (known, categorical, tuple(axes))
        if key == self._frame_key:
            cached = self._frame_numeric
            if cached is True:
                out[:] = True
                return out
            return self._apply_numeric(cached, spaces, idx, out)
        per_space = self._decompose(known, categorical, axes)
        self._frame_key = key
        self._frame_numeric = per_space
        if per_space is True:
            out[:] = True
            return out
        return self._apply_numeric(per_space, spaces, idx, out)

    def _decompose(self, known_pure, categorical, axes):
        """Split each pure region into its frame-shared and per-sibling
        parts; ``True`` means the context alone sits inside a region."""
        n = len(categorical) + len(axes)
        per_space: list[list] = []
        for pure in known_pure:
            if not n > len(pure):
                continue
            shared_ok = True
            numeric: list = []
            for item in pure.items:
                attribute = item.attribute
                theirs = categorical.item_for(attribute)
                if theirs is not None:
                    if isinstance(item, CategoricalItem):
                        if item != theirs:
                            shared_ok = False
                            break
                    elif not isinstance(theirs, NumericItem):
                        shared_ok = False
                        break
                    elif not item.interval.contains_interval(
                        theirs.interval
                    ):
                        shared_ok = False
                        break
                elif attribute not in axes or isinstance(
                    item, CategoricalItem
                ):
                    # No candidate item on this attribute (or a numeric
                    # box axis where the pure region is categorical).
                    shared_ok = False
                    break
                else:
                    numeric.append((attribute, item.interval))
            if not shared_ok:
                continue
            if not numeric:
                return True  # the context alone sits inside the region
            per_space.append(numeric)
        return per_space

    @staticmethod
    def _apply_numeric(per_space, spaces, idx, out):
        if not per_space:
            return out
        for j, i in enumerate(idx):
            intervals = spaces[int(i)].intervals
            for numeric in per_space:
                if all(
                    interval.contains_interval(intervals[attribute])
                    for attribute, interval in numeric
                ):
                    out[j] = True
                    break
        return out


class MinimumDeviationRule(PruneRule):
    """No group's support exceeds delta (rule 1, anti-monotone)."""

    name = "min_deviation"
    reason = PruneReason.MIN_DEVIATION

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_min_deviation

    def check(self, ctx: EvaluationContext) -> bool:
        return minimum_deviation_prunes(
            ctx.counts, ctx.group_sizes, ctx.config.delta
        )

    def check_batch(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        # batch.supports is the same divide-with-where formula the batch
        # kernel uses, shared with the redundancy rule — one computation
        # per batch instead of one per rule.
        return np.all(batch.supports[idx] <= batch.config.delta, axis=1)


class ExpectedCountRule(PruneRule):
    """Some expected contingency cell is below the floor (rule 2)."""

    name = "expected_count"
    reason = PruneReason.EXPECTED_COUNT

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_expected_count

    def check(self, ctx: EvaluationContext) -> bool:
        return expected_count_prunes(
            ctx.counts, ctx.group_sizes, ctx.config.min_expected_count
        )

    def check_batch(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        # Closed form of min_expected_count_batch on the batch's shared
        # row totals: row marginals are (r0, total - r0) and the column
        # minimum is sizes.min(), all exact in float64 (integer-valued).
        sizes = batch.sizes_f
        total = float(sizes.sum())
        if total <= 0:
            return np.zeros(len(idx)) < batch.config.min_expected_count
        r0 = batch.totals[idx].astype(np.float64)
        bound = np.minimum(r0, total - r0) * float(sizes.min()) / total
        return bound < batch.config.min_expected_count


class OptimisticChiSquareRule(PruneRule):
    """No specialisation can reach chi-square significance (rule 3).

    Applies to categorical itemset candidates only: the SDAD-CS recursion
    over numeric spaces is gated by the Eq. 6-11 support-difference
    estimate instead (see ``_SDADRun._optimistic_allows``).
    """

    name = "optimistic"
    reason = PruneReason.OPTIMISTIC_ESTIMATE
    phases = (PHASE_ITEMSET,)

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_optimistic

    def check(self, ctx: EvaluationContext) -> bool:
        bound = chi_square_estimate(ctx.counts, ctx.group_sizes)
        dof = max(1, len(ctx.counts) - 1)
        return bound < chi2_critical(ctx.alpha, dof)

    def check_batch(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        bounds = chi_square_estimate_batch(
            batch.counts[idx], batch.group_sizes
        )
        dof = max(1, len(batch.group_sizes) - 1)
        return bounds < chi2_critical(batch.alpha, dof)


class RedundancyRule(PruneRule):
    """Support difference within the CLT band of a subset (Eq. 14-16)."""

    name = "redundant"
    reason = PruneReason.REDUNDANT

    def enabled(self, config: MinerConfig) -> bool:
        return config.prune_redundant

    def check(self, ctx: EvaluationContext) -> bool:
        subsets = ctx.subset_patterns
        if not subsets:
            return False
        pattern = ctx.pattern
        return any(
            redundant_against_subset(pattern, subset, ctx.alpha)
            for subset in subsets
        )

    def check_batch(
        self, batch: EvaluationBatch, idx: np.ndarray
    ) -> np.ndarray:
        # The SDAD-CS space phase compares every child space against its
        # frame's parent region, so the test vectorizes per frame — one
        # kernel call per parent, each over that parent's rows (a
        # single-frame batch has one group, reproducing the shared-parent
        # fast path).  The itemset phase has per-candidate subset sets
        # and falls back to the scalar check.
        if batch.phase == PHASE_SPACE:
            groups = batch.shared_subset_groups
            if groups is not None:
                out = np.zeros(len(idx), dtype=bool)
                pos_of = {int(row): j for j, row in enumerate(idx)}
                for rows, subset_of in groups:
                    sel = [
                        pos_of[int(row)]
                        for row in rows
                        if int(row) in pos_of
                    ]
                    if not sel:
                        continue
                    subset = subset_of()
                    if subset is None:
                        continue
                    out[sel] = redundant_against_subset_batch(
                        batch.supports[idx[sel]], subset, batch.alpha
                    )
                return out
            subset = batch.shared_subset
            if subset is None:
                return np.zeros(len(idx), dtype=bool)
            return redundant_against_subset_batch(
                batch.supports[idx], subset, batch.alpha
            )
        return super().check_batch(batch, idx)


def default_rules() -> tuple[PruneRule, ...]:
    """The canonical rule chain, cheapest first.

    Empty and pure-space are O(1)-ish; minimum deviation and expected
    count are one pass over the group counts; the chi-square optimistic
    gate and the CLT redundancy test each evaluate a statistic, so they
    run last.  The order determines which *reason* a doubly-doomed
    candidate records, never whether it survives.
    """
    return (
        EmptyRule(),
        PureSpaceRule(),
        MinimumDeviationRule(),
        ExpectedCountRule(),
        OptimisticChiSquareRule(),
        RedundancyRule(),
    )


@dataclass
class RuleStats:
    """Per-rule effectiveness counters (checks, hits, wall time)."""

    checks: int = 0
    hits: int = 0
    seconds: float = 0.0
    batched: int = 0
    """How many of ``checks`` ran through :meth:`PruningPipeline.
    evaluate_batch` (the ``mode`` column of ``--explain-prunes``)."""

    def snapshot(self) -> "RuleStats":
        return RuleStats(self.checks, self.hits, self.seconds, self.batched)


class PruningPipeline:
    """Ordered, config-driven chain of prune rules with full accounting.

    One pipeline is built per mining run (or per parallel worker task)
    from :class:`MinerConfig`; it owns the :class:`PruneTable` and writes
    into the run's :class:`MiningStats`.  Every consumer — the level-wise
    search, SDAD-CS, the parallel workers, STUCCO — routes candidates
    through :meth:`seen` / :meth:`precheck` / :meth:`evaluate`, which is
    what guarantees serial, parallel, and backend-swapped runs agree on
    both patterns and prune accounting.
    """

    def __init__(
        self,
        config: MinerConfig | None = None,
        *,
        rules: Sequence[PruneRule] | None = None,
        prune_table: PruneTable | None = None,
        stats: MiningStats | None = None,
        time_rules: bool = True,
    ) -> None:
        self.config = config or MinerConfig()
        self.all_rules = tuple(rules) if rules is not None else default_rules()
        self.rules = tuple(
            rule for rule in self.all_rules if rule.enabled(self.config)
        )
        self.prune_table = prune_table if prune_table is not None else PruneTable()
        self.stats = stats if stats is not None else MiningStats()
        self.time_rules = time_rules
        self.rule_stats: dict[str, RuleStats] = {
            rule.name: RuleStats() for rule in self.rules
        }
        # Hot-path plans: (pattern_free_only, skip_pattern_free, phase) ->
        # tuple of (check, record, reason) with the per-candidate rule
        # filtering and stats-dict lookups resolved once.
        self._plans: dict[tuple[bool, bool, str], tuple] = {}
        # Same, but keeping the rule object for check_batch dispatch.
        self._batch_plans: dict[tuple[bool, bool, str], tuple] = {}
        self._keep = PruneDecision.keep()
        self._drops = {
            rule.reason: PruneDecision.drop(rule.reason)
            for rule in self.all_rules
        }
        self._published_rules: dict[str, RuleStats] = {}
        self._published_reasons: dict[PruneReason, int] = {}
        self._published_table_checks = 0
        self._published_table_hits = 0

    # ------------------------------------------------------------------
    # The candidate lifecycle
    # ------------------------------------------------------------------

    def seen(self, key: Hashable) -> bool:
        """Probe the prune lookup table (Algorithm 1 lines 7-9)."""
        if self.prune_table.contains(key):
            self.stats.spaces_pruned += 1
            return True
        return False

    def precheck(self, ctx: EvaluationContext) -> PruneDecision:
        """Run the pattern-free rules (before paying for counting)."""
        return self._run(ctx, pattern_free_only=True)

    def evaluate(
        self, ctx: EvaluationContext, *, skip_pattern_free: bool = False
    ) -> PruneDecision:
        """Run the rule chain on an evaluated candidate.

        Pass ``skip_pattern_free=True`` when :meth:`precheck` already ran
        for this candidate, so pattern-free rules are not re-checked.
        """
        return self._run(ctx, skip_pattern_free=skip_pattern_free)

    def _plan(
        self,
        pattern_free_only: bool,
        skip_pattern_free: bool,
        phase: str,
    ) -> tuple:
        key = (pattern_free_only, skip_pattern_free, phase)
        plan = self._plans.get(key)
        if plan is None:
            selected = []
            for rule in self.rules:
                if pattern_free_only and rule.needs_pattern:
                    continue
                if skip_pattern_free and not rule.needs_pattern:
                    continue
                if rule.phases is not None and phase not in rule.phases:
                    continue
                selected.append(
                    (rule.check, self.rule_stats[rule.name], rule.reason)
                )
            plan = self._plans[key] = tuple(selected)
        return plan

    def _run(
        self,
        ctx: EvaluationContext,
        *,
        pattern_free_only: bool = False,
        skip_pattern_free: bool = False,
    ) -> PruneDecision:
        plan = self._plan(pattern_free_only, skip_pattern_free, ctx.phase)
        clock = time.perf_counter if self.time_rules else None
        for check, record, reason in plan:
            record.checks += 1
            if clock is not None:
                start = clock()
                hit = check(ctx)
                record.seconds += clock() - start
            else:
                hit = check(ctx)
            if hit:
                record.hits += 1
                self.prune_table.add(ctx.key, reason)
                self.stats.spaces_pruned += 1
                return self._drops[reason]
        return self._keep

    def _batch_plan(
        self,
        pattern_free_only: bool,
        skip_pattern_free: bool,
        phase: str,
    ) -> tuple:
        key = (pattern_free_only, skip_pattern_free, phase)
        plan = self._batch_plans.get(key)
        if plan is None:
            selected = []
            for rule in self.rules:
                if pattern_free_only and rule.needs_pattern:
                    continue
                if skip_pattern_free and not rule.needs_pattern:
                    continue
                if rule.phases is not None and phase not in rule.phases:
                    continue
                selected.append(
                    (rule, self.rule_stats[rule.name], rule.reason)
                )
            plan = self._batch_plans[key] = tuple(selected)
        return plan

    def evaluate_batch(
        self,
        batch: EvaluationBatch,
        *,
        pattern_free_only: bool = False,
        skip_pattern_free: bool = False,
    ) -> np.ndarray:
        """Run the rule chain over a whole batch; True = candidate kept.

        Accounting is summed identically to running :meth:`evaluate` per
        candidate: each rule's ``checks`` grows by the number of
        candidates still alive when it runs (a candidate killed by an
        earlier rule is never checked by later ones), ``hits`` by the
        candidates it kills, and each kill lands in the prune table under
        the first-firing rule's reason — exactly the scalar short-circuit
        order, so ``--explain-prunes`` output is unchanged.
        """
        n = batch.size
        keep = np.ones(n, dtype=bool)
        if n == 0:
            return keep
        plan = self._batch_plan(
            pattern_free_only, skip_pattern_free, batch.phase
        )
        alive = np.arange(n)
        clock = time.perf_counter if self.time_rules else None
        for rule, record, reason in plan:
            if alive.size == 0:
                break
            record.checks += int(alive.size)
            record.batched += int(alive.size)
            if clock is not None:
                start = clock()
                hits = np.asarray(
                    rule.check_batch(batch, alive), dtype=bool
                )
                record.seconds += clock() - start
            else:
                hits = np.asarray(rule.check_batch(batch, alive), dtype=bool)
            if hits.any():
                hit_idx = alive[hits]
                record.hits += int(hit_idx.size)
                keys = batch.keys
                add = self.prune_table.add
                for i in hit_idx:
                    add(keys[i], reason)
                self.stats.spaces_pruned += int(hit_idx.size)
                keep[hit_idx] = False
                alive = alive[~hits]
        return keep

    def check_gate(self, rule: PruneRule, ctx: EvaluationContext) -> bool:
        """Run one rule as a *gate* (counted, but nothing recorded).

        STUCCO uses the optimistic chi-square rule this way: a failing
        node is still reported if it is itself a contrast, only its
        expansion is cut.  The check lands in the per-rule stats under
        ``<name>(gate)`` so gate effectiveness is observable too.
        """
        name = f"{rule.name}(gate)"
        record = self.rule_stats.setdefault(name, RuleStats())
        record.checks += 1
        if self.time_rules:
            start = time.perf_counter()
            hit = rule.check(ctx)
            record.seconds += time.perf_counter() - start
        else:
            hit = rule.check(ctx)
        if hit:
            record.hits += 1
        return hit

    # ------------------------------------------------------------------
    # Publishing into MiningStats
    # ------------------------------------------------------------------

    def publish(self, stats: MiningStats | None = None) -> None:
        """Fold per-rule counters and table reasons into ``stats``.

        Delta semantics (like the counting backends): only what accrued
        since the previous publish is added, so a long-lived pipeline can
        publish into a fresh stats object per slice of work without
        double counting.
        """
        stats = self.stats if stats is None else stats
        for name, record in self.rule_stats.items():
            previous = self._published_rules.get(name)
            d_checks = record.checks - (previous.checks if previous else 0)
            d_hits = record.hits - (previous.hits if previous else 0)
            d_seconds = record.seconds - (
                previous.seconds if previous else 0.0
            )
            stats.prune_rule_checks[name] = (
                stats.prune_rule_checks.get(name, 0) + d_checks
            )
            stats.prune_rule_hits[name] = (
                stats.prune_rule_hits.get(name, 0) + d_hits
            )
            stats.prune_rule_seconds[name] = (
                stats.prune_rule_seconds.get(name, 0.0) + d_seconds
            )
            d_batched = record.batched - (
                previous.batched if previous else 0
            )
            if d_batched or name in stats.prune_rule_batched:
                stats.prune_rule_batched[name] = (
                    stats.prune_rule_batched.get(name, 0) + d_batched
                )
            self._published_rules[name] = record.snapshot()
        reasons = self.prune_table.reason_counts()
        for reason, count in reasons.items():
            delta = count - self._published_reasons.get(reason, 0)
            if delta:
                stats.prune_reasons[reason.name] = (
                    stats.prune_reasons.get(reason.name, 0) + delta
                )
        self._published_reasons = dict(reasons)
        stats.prune_table_checks += (
            self.prune_table.checks - self._published_table_checks
        )
        stats.prune_table_hits += (
            self.prune_table.hits - self._published_table_hits
        )
        self._published_table_checks = self.prune_table.checks
        self._published_table_hits = self.prune_table.hits


# ----------------------------------------------------------------------
# The shared categorical candidate lifecycle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateOutcome:
    """A categorical candidate that survived the pipeline."""

    itemset: Itemset
    pattern: ContrastPattern
    is_contrast: bool
    is_pure: bool
    """True when the candidate is a pure (PR = 1) contrast that must be
    registered in the pure-region registry (pure-space pruning)."""


def process_categorical_candidate(
    itemset: Itemset,
    dataset,
    pipeline: PruningPipeline,
    *,
    alpha: float,
    level: int,
    subset_patterns: Mapping[Itemset, ContrastPattern],
    known_pure: Sequence[Itemset],
    backend=None,
    threshold: float = 0.0,
) -> CandidateOutcome | None:
    """One categorical candidate through the full lifecycle.

    Lookup-table probe, pure-space precheck, support counting, then the
    evaluated rule chain.  Returns ``None`` when the candidate was pruned
    (the pipeline has already recorded why); otherwise the evaluated
    pattern plus its contrast/purity verdicts, which the caller folds
    into its own viable/top-k/pure bookkeeping.  Both the serial
    :class:`~repro.core.search.SearchEngine` and the parallel worker loop
    call this, which is what keeps them byte-identical.
    """
    config = pipeline.config
    if pipeline.seen(itemset):
        return None
    ctx = EvaluationContext(
        key=itemset,
        config=config,
        alpha=alpha,
        level=level,
        itemset=itemset,
        known_pure=known_pure,
        threshold=threshold,
    )
    if pipeline.precheck(ctx).pruned:
        return None
    pipeline.stats.partitions_evaluated += 1
    pattern = evaluate_itemset(itemset, dataset, level, backend=backend)
    ctx.attach_pattern(pattern)

    def subsets() -> list[ContrastPattern]:
        found = []
        for attribute in itemset.attributes:
            subset = subset_patterns.get(itemset.without_attribute(attribute))
            if subset is not None:
                found.append(subset)
        return found

    ctx._subsets_factory = subsets
    if pipeline.evaluate(ctx, skip_pattern_free=True).pruned:
        return None
    is_contrast = pattern.is_contrast(config.delta, alpha)
    is_pure = bool(
        config.prune_pure_space
        and is_contrast
        and is_pure_space(pattern.counts)
    )
    return CandidateOutcome(itemset, pattern, is_contrast, is_pure)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

_RULE_REASONS = {rule.name: rule.reason.name for rule in default_rules()}


def format_prune_report(stats: MiningStats) -> str:
    """Human-readable per-rule effectiveness report (``--explain-prunes``).

    One row per pipeline rule: how many candidates it saw, how many it
    cut, the wall time it cost, and the matching lookup-table reason
    count (unique pruned keys).  The trailing ``mode`` column annotates
    how the rule's checks ran — ``batch`` (all through
    :meth:`PruningPipeline.evaluate_batch`), ``scalar`` (all
    per-candidate), or ``mixed``; it is appended after the historical
    columns so older report parsers keep working.  The lookup table's own
    probe/hit tally follows — table hits are candidates skipped without
    any rule running.
    """
    names = list(stats.prune_rule_checks)
    lines = ["Pruning pipeline (rule order = evaluation order):"]
    header = (
        f"  {'rule':<20} {'checks':>9} {'hits':>9} {'hit%':>7} "
        f"{'time(s)':>9} {'table':>7} {'mode':>7}"
    )
    lines.append(header)
    for name in names:
        checks = stats.prune_rule_checks.get(name, 0)
        hits = stats.prune_rule_hits.get(name, 0)
        seconds = stats.prune_rule_seconds.get(name, 0.0)
        rate = f"{100.0 * hits / checks:.1f}" if checks else "-"
        reason = _RULE_REASONS.get(name)
        table = (
            str(stats.prune_reasons.get(reason, 0))
            if reason is not None
            else "-"
        )
        batched = stats.prune_rule_batched.get(name, 0)
        if not checks:
            mode = "-"
        elif batched >= checks:
            mode = "batch"
        elif batched == 0:
            mode = "scalar"
        else:
            mode = "mixed"
        lines.append(
            f"  {name:<20} {checks:>9} {hits:>9} {rate:>7} "
            f"{seconds:>9.3f} {table:>7} {mode:>7}"
        )
    lines.append(
        f"  lookup table: {stats.prune_table_checks} probes, "
        f"{stats.prune_table_hits} hits "
        f"(candidates skipped without re-evaluation)"
    )
    total = sum(stats.prune_rule_hits.values())
    lines.append(
        f"  total pruned: {stats.spaces_pruned} "
        f"({total} by rules, {stats.prune_table_hits} by table)"
    )
    return "\n".join(lines)
