"""Contrast patterns: itemsets annotated with per-group statistics.

A :class:`ContrastPattern` is the unit of output of every miner in this
package.  It records the itemset, the per-group covered counts and group
sizes, and exposes the derived quantities the paper works with: per-group
supports (Eq. 1), support difference (Eq. 2), purity ratio (Eq. 12), the
Surprising Measure (Eq. 13), and the chi-square significance test (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from .items import Itemset
from .stats import (
    ChiSquareResult,
    chi_square_independence,
    contingency_from_counts,
    fisher_exact_2x2,
    min_expected_count,
)

__all__ = ["ContrastPattern"]


@dataclass(frozen=True)
class ContrastPattern:
    """An itemset with its per-group evaluation on a dataset.

    Parameters
    ----------
    itemset:
        The pattern itself.
    counts:
        Per-group number of covered rows, aligned with ``group_labels``.
    group_sizes:
        Per-group total number of rows.
    group_labels:
        Names of the groups (display only).
    level:
        Search-tree level (number of attributes) the pattern was found at.
    hypervolume:
        n-volume of the numeric box the pattern occupies, normalised to the
        attribute ranges; used to order the bottom-up merge (Section 4.1).
    """

    itemset: Itemset
    counts: tuple[int, ...]
    group_sizes: tuple[int, ...]
    group_labels: tuple[str, ...]
    level: int = 1
    hypervolume: float = 1.0

    def __post_init__(self) -> None:
        if not (
            len(self.counts) == len(self.group_sizes) == len(self.group_labels)
        ):
            raise ValueError("counts, sizes and labels must align")
        if len(self.counts) < 2:
            raise ValueError("contrast patterns need at least two groups")
        for count, size in zip(self.counts, self.group_sizes):
            if count < 0 or size < 0 or count > size:
                raise ValueError(
                    f"inconsistent counts {self.counts} for sizes "
                    f"{self.group_sizes}"
                )

    # ------------------------------------------------------------------
    # Supports and interest measures
    # ------------------------------------------------------------------

    @cached_property
    def supports(self) -> tuple[float, ...]:
        """Per-group supports, ``supp_k(c) = count_k(c) / |g_k|`` (Eq. 1)."""
        return tuple(
            count / size if size else 0.0
            for count, size in zip(self.counts, self.group_sizes)
        )

    def support(self, group: int | str) -> float:
        if isinstance(group, str):
            group = self.group_labels.index(group)
        return self.supports[group]

    @cached_property
    def _extreme_pair(self) -> tuple[int, int]:
        """Indices of the (max-support, min-support) groups."""
        supports = self.supports
        hi = max(range(len(supports)), key=supports.__getitem__)
        lo = min(range(len(supports)), key=supports.__getitem__)
        return hi, lo

    @property
    def support_difference(self) -> float:
        """Largest pairwise support difference (Eq. 2 generalised to
        k groups, as STUCCO does)."""
        hi, lo = self._extreme_pair
        return self.supports[hi] - self.supports[lo]

    @property
    def dominant_group(self) -> str:
        """Label of the group with the highest support."""
        return self.group_labels[self._extreme_pair[0]]

    @property
    def purity_ratio(self) -> float:
        """Purity Ratio (Eq. 12) between the extreme-support groups.

        1 means the covered region is pure (only one group present);
        0 means the groups are equally represented.
        """
        hi, lo = self._extreme_pair
        s_hi, s_lo = self.supports[hi], self.supports[lo]
        if s_hi == 0.0:
            return 0.0
        return 1.0 - s_lo / s_hi

    @property
    def surprising_measure(self) -> float:
        """SurPRising Measure = PR x Diff (Eq. 13)."""
        return self.purity_ratio * self.support_difference

    @cached_property
    def chi_square(self) -> ChiSquareResult:
        """Chi-square test of independence between coverage and group."""
        table = contingency_from_counts(self.counts, self.group_sizes)
        return chi_square_independence(table)

    @cached_property
    def min_expected(self) -> float:
        """Smallest expected contingency cell (the >= 5 pruning rule)."""
        return min_expected_count(self.counts, self.group_sizes)

    @cached_property
    def significance_p_value(self) -> float:
        """P-value for coverage-vs-group dependence.

        Uses the chi-square test; for two groups with an expected cell
        below 5 (where the chi-square approximation is unreliable) it
        falls back to Fisher's exact test, as Section 3 prescribes for
        small samples.
        """
        if len(self.counts) == 2 and self.min_expected < 5.0:
            table = contingency_from_counts(
                self.counts, self.group_sizes
            ).astype(int)
            return fisher_exact_2x2(table)
        return self.chi_square.p_value

    # ------------------------------------------------------------------
    # Predicates from the paper
    # ------------------------------------------------------------------

    def is_large(self, delta: float) -> bool:
        """Support-difference largeness test (Eq. 2)."""
        return self.support_difference > delta

    def is_significant(self, alpha: float) -> bool:
        """Significance test (Eq. 3): chi-square, with a Fisher exact
        fallback for small two-group tables."""
        return self.significance_p_value < alpha

    def is_contrast(self, delta: float, alpha: float) -> bool:
        return self.is_large(delta) and self.is_significant(alpha)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    @property
    def total_count(self) -> int:
        return int(sum(self.counts))

    def interest(self, measure: str = "support_difference") -> float:
        """Evaluate a named interest measure on this pattern.

        Thin convenience wrapper over :mod:`repro.core.measures`; imported
        lazily to avoid a module cycle.
        """
        from . import measures

        return measures.evaluate(measure, self)

    def describe(self) -> str:
        supports = ", ".join(
            f"supp({label})={supp:.3f}"
            for label, supp in zip(self.group_labels, self.supports)
        )
        return f"{self.itemset} [{supports}]"

    def __str__(self) -> str:
        return self.describe()


def evaluate_itemset(
    itemset: Itemset,
    dataset,
    level: int | None = None,
    hypervolume: float = 1.0,
    backend=None,
) -> ContrastPattern:
    """Count an itemset's coverage on a dataset and wrap it as a pattern.

    ``backend`` is an optional :class:`repro.counting.CountingBackend`;
    without one, counting falls back to a fresh boolean mask (equivalent
    to the mask backend, minus instrumentation).
    """
    if backend is not None:
        counts = tuple(int(c) for c in backend.group_counts(itemset))
    else:
        mask = itemset.cover(dataset)
        counts = tuple(int(c) for c in dataset.group_counts(mask))
    return ContrastPattern(
        itemset=itemset,
        counts=counts,
        group_sizes=dataset.group_sizes,
        group_labels=dataset.group_labels,
        level=len(itemset) if level is None else level,
        hypervolume=hypervolume,
    )


__all__.append("evaluate_itemset")
