"""The batch evaluation engine: whole candidate levels as array programs.

The scalar candidate lifecycle (``process_categorical_candidate`` and the
SDAD-CS ``_can_prune`` sequence) evaluates one candidate at a time: one
backend counting call, one pass down the rule chain, one verdict.  Per
candidate that is a handful of numpy calls on tiny arrays — the fixed
per-call overhead dominates the arithmetic.

:class:`BatchEvaluator` restructures the hot path around *batches*: all
candidates of one (level, attribute-combination) — or all child spaces of
one SDAD-CS region — become a single ``(N, n_groups)`` counts matrix that
flows through

* :meth:`repro.counting.CountingBackend.group_counts_batch` (one stacked
  counting sweep instead of N calls),
* :meth:`repro.core.pipeline.PruningPipeline.evaluate_batch` (each rule
  judges the whole batch through its vectorized ``check_batch``), and
* vectorized verdict kernels (interest measure, purity, the
  large-and-significant contrast test).

Every kernel is bit-identical to its scalar counterpart applied row by
row (pinned by ``tests/test_batch_equivalence.py``), and the pipeline's
accounting is summed exactly as the scalar short-circuit order would, so
batch and scalar drivers produce byte-identical patterns *and* identical
``--explain-prunes`` output.  ``MinerConfig(batch_evaluation=False)`` is
the escape hatch that routes everything back through the scalar path.

See DESIGN.md §12 for the protocol, fallback semantics, and the API
migration table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from . import measures
from .config import MinerConfig
from .contrast import ContrastPattern
from .items import Itemset
from .pipeline import (
    PHASE_SPACE,
    CandidateOutcome,
    EvaluationBatch,
    EvaluationContext,
    PruningPipeline,
)
from .pruning import is_pure_space, is_pure_space_batch
from .stats import (
    chi_square_counts_batch,
    contingency_from_counts,
    fisher_exact_2x2,
    min_expected_count_batch,
)

__all__ = ["BatchEvaluator", "SpaceVerdict"]


@dataclass(frozen=True)
class SpaceVerdict:
    """Vectorized per-space verdicts for one surviving SDAD-CS child.

    ``interest`` is ``None`` when the configured measure has no batch
    form (``wracc``/``leverage``/``lift``); the caller then evaluates the
    scalar measure on the materialised pattern.
    """

    interest: float | None
    pure: bool
    is_contrast: bool


class BatchEvaluator:
    """Drives candidate batches through counting, pruning, and verdicts.

    One evaluator is built per mining run (or per parallel worker task)
    around the run's shared :class:`PruningPipeline` and counting
    backend.  It never changes *what* is computed — only how many
    candidates each numpy call touches.
    """

    def __init__(
        self,
        dataset,
        pipeline: PruningPipeline,
        backend,
        measure: str | None = None,
    ) -> None:
        self.dataset = dataset
        self.pipeline = pipeline
        self.config: MinerConfig = pipeline.config
        self.backend = backend
        self.group_sizes: tuple[int, ...] = tuple(dataset.group_sizes)
        self.group_labels: tuple[str, ...] = tuple(dataset.group_labels)
        self._sizes_i = np.asarray(self.group_sizes, dtype=np.int64)
        self._sizes_f = np.asarray(self.group_sizes, dtype=np.float64)
        self.measure_name = measure
        self.measure_batch = (
            measures.get_batch(measure) if measure is not None else None
        )
        self._ranges: dict[str, object] = {}

    def range_of(self, attribute: str):
        """Cached :class:`~repro.core.partition.AttributeRange`.

        The observed [min, max] of a column is a whole-dataset property —
        independent of the categorical context — so one evaluator shared
        across SDAD-CS runs computes it once per attribute instead of
        once per run.
        """
        rng = self._ranges.get(attribute)
        if rng is None:
            from .partition import AttributeRange

            rng = AttributeRange.of(self.dataset, attribute)
            self._ranges[attribute] = rng
        return rng

    # ------------------------------------------------------------------
    # Shared verdict kernel
    # ------------------------------------------------------------------

    def _is_contrast_rows(
        self, counts: np.ndarray, alpha: float
    ) -> np.ndarray:
        """``ContrastPattern.is_contrast(delta, alpha)`` per counts row.

        Mirrors the scalar short-circuit exactly: the largeness test
        (Eq. 2) runs first, and significance (Eq. 3) is only computed for
        large rows — chi-square for the batch, with the per-row Fisher
        exact fallback for two-group tables with an expected cell below
        5, precisely the scalar ``significance_p_value`` dispatch.
        """
        counts = np.asarray(counts, dtype=np.int64)
        n, g = counts.shape
        out = np.zeros(n, dtype=bool)
        if n == 0:
            return out
        sizes = self._sizes_f
        sup = np.divide(
            counts.astype(np.float64), sizes[None, :],
            out=np.zeros((n, g), dtype=np.float64),
            where=(sizes > 0)[None, :],
        )
        large = (sup.max(axis=1) - sup.min(axis=1)) > self.config.delta
        if not large.any():
            return out
        idx = np.flatnonzero(large)
        sub = counts[idx]
        _, p_values, _ = chi_square_counts_batch(sub, self._sizes_i)
        if g == 2:
            min_exp = min_expected_count_batch(sub, self._sizes_i)
            for j in np.flatnonzero(min_exp < 5.0):
                table = contingency_from_counts(
                    sub[j], self._sizes_i
                ).astype(int)
                p_values[j] = fisher_exact_2x2(table)
        out[idx] = p_values < alpha
        return out

    # ------------------------------------------------------------------
    # Categorical itemset batches (level-wise search / parallel workers)
    # ------------------------------------------------------------------

    def process_categorical_combo(
        self,
        candidates: Sequence[Itemset],
        *,
        alpha: float,
        level: int,
        subset_patterns: Mapping[Itemset, ContrastPattern],
        known_pure: Sequence[Itemset],
        threshold: float = 0.0,
    ) -> list[CandidateOutcome]:
        """All candidates of one categorical combination, batched.

        Returns the surviving candidates' outcomes in candidate order —
        exactly the non-``None`` results a ``process_categorical_candidate``
        loop would produce, with identical prune accounting.  Candidate
        keys within a combination are distinct, so probing the lookup
        table for all of them up front sees the same table state the
        scalar interleaving would.
        """
        pipeline = self.pipeline
        config = self.config
        fresh = [its for its in candidates if not pipeline.seen(its)]
        if not fresh:
            return []

        def precheck_context(i: int) -> EvaluationContext:
            return EvaluationContext(
                key=fresh[i],
                config=config,
                alpha=alpha,
                level=level,
                itemset=fresh[i],
                known_pure=known_pure,
                threshold=threshold,
            )

        precheck = EvaluationBatch(
            keys=fresh,
            config=config,
            alpha=alpha,
            level=level,
            threshold=threshold,
            known_pure=known_pure,
            context_factory=precheck_context,
        )
        keep = pipeline.evaluate_batch(precheck, pattern_free_only=True)
        survivors = [its for its, kept in zip(fresh, keep) if kept]
        if not survivors:
            return []
        pipeline.stats.partitions_evaluated += len(survivors)
        counts = self.backend.group_counts_batch(survivors)

        sizes = self.group_sizes
        labels = self.group_labels
        patterns: dict[int, ContrastPattern] = {}

        def pattern_at(i: int) -> ContrastPattern:
            pattern = patterns.get(i)
            if pattern is None:
                pattern = patterns[i] = ContrastPattern(
                    itemset=survivors[i],
                    counts=tuple(int(c) for c in counts[i]),
                    group_sizes=sizes,
                    group_labels=labels,
                    level=level,
                )
            return pattern

        def evaluate_context(i: int) -> EvaluationContext:
            itemset = survivors[i]

            def subsets() -> list[ContrastPattern]:
                found = []
                for attribute in itemset.attributes:
                    subset = subset_patterns.get(
                        itemset.without_attribute(attribute)
                    )
                    if subset is not None:
                        found.append(subset)
                return found

            return EvaluationContext(
                key=itemset,
                config=config,
                alpha=alpha,
                level=level,
                itemset=itemset,
                known_pure=known_pure,
                threshold=threshold,
                counts=tuple(int(c) for c in counts[i]),
                group_sizes=sizes,
                total_count=int(counts[i].sum()),
                pattern_factory=lambda: pattern_at(i),
                subsets_factory=subsets,
            )

        batch = EvaluationBatch(
            keys=survivors,
            config=config,
            alpha=alpha,
            level=level,
            threshold=threshold,
            known_pure=known_pure,
            counts=counts,
            group_sizes=sizes,
            context_factory=evaluate_context,
        )
        kept_mask = pipeline.evaluate_batch(batch, skip_pattern_free=True)
        kept_idx = np.flatnonzero(kept_mask)
        if kept_idx.size == 0:
            return []
        flags = self._is_contrast_rows(counts[kept_idx], alpha)
        outcomes: list[CandidateOutcome] = []
        for flag, i in zip(flags, kept_idx):
            i = int(i)
            pattern = pattern_at(i)
            is_contrast = bool(flag)
            is_pure = bool(
                config.prune_pure_space
                and is_contrast
                and is_pure_space(pattern.counts)
            )
            outcomes.append(
                CandidateOutcome(survivors[i], pattern, is_contrast, is_pure)
            )
        return outcomes

    # ------------------------------------------------------------------
    # SDAD-CS space batches (one recursion frame)
    # ------------------------------------------------------------------

    def score_spaces(
        self,
        spaces: Sequence,
        *,
        categorical: Itemset,
        alpha: float,
        level: int,
        threshold: float,
        known_pure: Sequence[Itemset],
        region,
        pattern_of: Callable[[object], ContrastPattern],
    ) -> list[SpaceVerdict | None]:
        """One SDAD-CS frame's child spaces, batched.

        Convenience wrapper over :meth:`score_frames` for a single
        (parent region, child spaces) frame.
        """
        return self.score_frames(
            [(spaces, region)],
            categorical=categorical,
            alpha=alpha,
            level=level,
            threshold=threshold,
            known_pure=known_pure,
            pattern_of=pattern_of,
        )[0]

    def score_frames(
        self,
        frames: Sequence[tuple[Sequence, object]],
        *,
        categorical: Itemset,
        alpha: float,
        level: int,
        threshold: float,
        known_pure: Sequence[Itemset],
        pattern_of: Callable[[object], ContrastPattern],
    ) -> list[list[SpaceVerdict | None]]:
        """Several SDAD-CS frames' child spaces as one batch.

        ``frames`` is a sequence of ``(child_spaces, parent_region)``
        pairs sharing one categorical context, split alpha, and frozen
        threshold/known-pure state — exactly the sibling frames of one
        recursion level of a run.  Returns one verdict list per frame,
        each aligned with its spaces: ``None`` where the space was pruned
        (lookup table or rule chain — already recorded), a
        :class:`SpaceVerdict` where it survived.

        Boxes within a run are pairwise distinct (median splits strictly
        shrink the split axis, and sibling subtrees occupy disjoint
        intervals of the axis their parents split), so the lookup-table
        probes see the same state the scalar interleaving would; every
        space-phase rule reads only run-frozen state, and the redundancy
        rule receives each child's own parent via per-frame groups.
        ``pattern_of`` is the run's ``_pattern_of``, invoked lazily: once
        per parent whose direction the redundancy rule needs, and per
        space only when a scalar-fallback rule asks.
        """
        pipeline = self.pipeline
        config = self.config
        spaces_flat: list = []
        frame_of: list[int] = []
        for f, (spaces, _region) in enumerate(frames):
            spaces_flat.extend(spaces)
            frame_of.extend([f] * len(spaces))
        verdicts: list[SpaceVerdict | None] = [None] * len(spaces_flat)
        keys = [(categorical, space.key()) for space in spaces_flat]
        fresh_idx = [
            i for i, key in enumerate(keys) if not pipeline.seen(key)
        ]
        if fresh_idx:
            self._score_fresh(
                frames,
                spaces_flat,
                frame_of,
                keys,
                fresh_idx,
                verdicts,
                categorical=categorical,
                alpha=alpha,
                level=level,
                threshold=threshold,
                known_pure=known_pure,
                pattern_of=pattern_of,
            )
        out: list[list[SpaceVerdict | None]] = []
        start = 0
        for spaces, _region in frames:
            out.append(verdicts[start : start + len(spaces)])
            start += len(spaces)
        return out

    def _score_fresh(
        self,
        frames,
        spaces_flat,
        frame_of,
        keys,
        fresh_idx,
        verdicts,
        *,
        categorical,
        alpha,
        level,
        threshold,
        known_pure,
        pattern_of,
    ) -> None:
        pipeline = self.pipeline
        config = self.config
        counts = np.stack(
            [
                np.asarray(spaces_flat[i].counts, dtype=np.int64)
                for i in fresh_idx
            ]
        )
        sizes = self.group_sizes

        subset_cache: dict[int, ContrastPattern | None] = {}

        def subset_of(f: int) -> ContrastPattern | None:
            # Matches the scalar guard: a parent with no rows carries no
            # usable direction, so no subset is offered to the rule.
            if f not in subset_cache:
                region = frames[f][1]
                subset_cache[f] = (
                    pattern_of(region) if region.total_count > 0 else None
                )
            return subset_cache[f]

        batch_frame = np.asarray(
            [frame_of[i] for i in fresh_idx], dtype=np.int64
        )
        groups = []
        for f in range(len(frames)):
            rows = np.flatnonzero(batch_frame == f)
            if rows.size:
                groups.append((rows, lambda f=f: subset_of(f)))

        def space_context(j: int) -> EvaluationContext:
            i = fresh_idx[j]
            space = spaces_flat[i]
            f = frame_of[i]

            def subsets() -> tuple:
                subset = subset_of(f)
                return (subset,) if subset is not None else ()

            return EvaluationContext(
                key=keys[i],
                config=config,
                alpha=alpha,
                level=level,
                phase=PHASE_SPACE,
                threshold=threshold,
                known_pure=known_pure,
                counts=space.counts,
                group_sizes=sizes,
                total_count=space.total_count,
                itemset_factory=lambda: space.itemset_with(categorical),
                pattern_factory=lambda: pattern_of(space),
                subsets_factory=subsets,
            )

        batch = EvaluationBatch(
            keys=[keys[i] for i in fresh_idx],
            config=config,
            alpha=alpha,
            phase=PHASE_SPACE,
            level=level,
            threshold=threshold,
            known_pure=known_pure,
            counts=counts,
            group_sizes=sizes,
            spaces=[spaces_flat[i] for i in fresh_idx],
            categorical=categorical,
            context_factory=space_context,
            shared_subset_groups=groups,
        )
        kept_mask = pipeline.evaluate_batch(batch)
        kept = np.flatnonzero(kept_mask)
        pipeline.stats.partitions_evaluated += int(kept.size)
        if kept.size == 0:
            return
        sub = counts[kept]
        interests = (
            self.measure_batch(sub, sizes)
            if self.measure_batch is not None
            else None
        )
        pures = is_pure_space_batch(sub)
        flags = self._is_contrast_rows(sub, alpha)
        for j, k in enumerate(kept):
            verdicts[fresh_idx[int(k)]] = SpaceVerdict(
                float(interests[j]) if interests is not None else None,
                bool(pures[j]),
                bool(flags[j]),
            )
