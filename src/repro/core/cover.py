"""Packed per-chunk row coverage — the search-state representation.

A :class:`Cover` is the set of rows a space (or categorical context)
covers, stored as one ``np.packbits`` segment per dataset chunk instead
of a dense boolean array over all rows.  This is what lets the SDAD-CS
recursion keep its per-space state at ``n_rows / 8`` bytes (and its
*working* set at O(chunk)) while staying bit-for-bit exact:

* ``packbits`` pads each segment's final byte with zero bits, and the
  padding is stable under ``&`` / ``|``, so packed boolean algebra on
  segments equals boolean algebra on the dense masks;
* per-group counting inside a cover is a packed AND + popcount against
  per-chunk group bit-stacks — exactly the integer ``bincount`` of the
  dense path, computed without ever materialising a full-row mask;
* a dense in-memory dataset is simply the one-chunk special case
  (``chunk_sizes == (n_rows,)``), so one code path serves both.

Segments may be supplied lazily as zero-argument callables; they are
materialised (and cached) on first access.  Lazy segments let a chunked
counting backend describe a context's coverage without touching any
chunk until the search actually intersects or counts it.

Pickling always materialises: a pickled cover is its packed bytes
(~``n_rows / 8`` plus small overhead), never a thunk.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Cover"]


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(bits: np.ndarray) -> int:
        return int(np.bitwise_count(bits).sum())

    def _popcount_rows(bits: np.ndarray) -> np.ndarray:
        return np.bitwise_count(bits).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT_TABLE = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _popcount(bits: np.ndarray) -> int:
        return int(_POPCOUNT_TABLE[bits].sum(dtype=np.int64))

    def _popcount_rows(bits: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[bits].sum(axis=1, dtype=np.int64)


def _packed_full(n_rows: int) -> np.ndarray:
    """Packed all-ones segment of ``n_rows`` bits (zero padding)."""
    n_words = (n_rows + 7) >> 3
    seg = np.full(n_words, 0xFF, dtype=np.uint8)
    rem = n_rows & 7
    if rem and n_words:
        seg[-1] = (0xFF << (8 - rem)) & 0xFF
    return seg


class Cover:
    """Packed per-chunk bitset over the rows of a (possibly chunked)
    dataset.

    Parameters
    ----------
    segments:
        One entry per chunk: either a packed ``uint8`` array of
        ``ceil(chunk_size / 8)`` words (``np.packbits`` layout, big bit
        order) or a zero-argument callable producing one (materialised
        lazily on first access and cached).
    chunk_sizes:
        Number of rows per chunk.  Dense datasets use ``(n_rows,)``.
    """

    __slots__ = ("_segments", "_chunk_sizes")

    def __init__(
        self,
        segments: Sequence["np.ndarray | Callable[[], np.ndarray]"],
        chunk_sizes: Sequence[int],
    ) -> None:
        self._chunk_sizes = tuple(int(n) for n in chunk_sizes)
        self._segments: list = list(segments)
        if len(self._segments) != len(self._chunk_sizes):
            raise ValueError(
                f"{len(self._segments)} segments for "
                f"{len(self._chunk_sizes)} chunks"
            )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(
        cls, mask: np.ndarray, chunk_sizes: Sequence[int] | None = None
    ) -> "Cover":
        """Pack a dense boolean mask, splitting at chunk boundaries."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.ndim != 1:
            raise ValueError("mask must be a 1-d boolean array")
        if chunk_sizes is None:
            chunk_sizes = (mask.shape[0],)
        sizes = tuple(int(n) for n in chunk_sizes)
        if sum(sizes) != mask.shape[0]:
            raise ValueError(
                f"chunk sizes sum to {sum(sizes)}, mask has "
                f"{mask.shape[0]} rows"
            )
        segments = []
        offset = 0
        for n in sizes:
            segments.append(np.packbits(mask[offset:offset + n]))
            offset += n
        return cls(segments, sizes)

    @classmethod
    def full(cls, chunk_sizes: Sequence[int]) -> "Cover":
        """Cover of every row (all bits set, padding zero)."""
        sizes = tuple(int(n) for n in chunk_sizes)
        return cls([_packed_full(n) for n in sizes], sizes)

    @classmethod
    def empty(cls, chunk_sizes: Sequence[int]) -> "Cover":
        """Cover of no rows."""
        sizes = tuple(int(n) for n in chunk_sizes)
        return cls(
            [np.zeros((n + 7) >> 3, dtype=np.uint8) for n in sizes], sizes
        )

    # -- shape -------------------------------------------------------------

    @property
    def chunk_sizes(self) -> tuple[int, ...]:
        return self._chunk_sizes

    @property
    def n_chunks(self) -> int:
        return len(self._chunk_sizes)

    @property
    def n_rows(self) -> int:
        return sum(self._chunk_sizes)

    # -- segment access ----------------------------------------------------

    def segment(self, i: int) -> np.ndarray:
        """Packed words of chunk ``i`` (materialising a lazy segment)."""
        seg = self._segments[i]
        if callable(seg):
            seg = np.asarray(seg(), dtype=np.uint8)
            expected = (self._chunk_sizes[i] + 7) >> 3
            if seg.shape != (expected,):
                raise ValueError(
                    f"segment {i} produced {seg.shape}, expected "
                    f"({expected},)"
                )
            self._segments[i] = seg
        return seg

    def dense_segment(self, i: int) -> np.ndarray:
        """Chunk ``i`` as a dense boolean array of its chunk size."""
        return np.unpackbits(
            self.segment(i), count=self._chunk_sizes[i]
        ).view(np.bool_)

    def is_materialized(self, i: int) -> bool:
        return not callable(self._segments[i])

    # -- boolean algebra ---------------------------------------------------

    def _check_aligned(self, other: "Cover") -> None:
        if self._chunk_sizes != other._chunk_sizes:
            raise ValueError(
                f"covers are not chunk-aligned: {self._chunk_sizes} "
                f"vs {other._chunk_sizes}"
            )

    def __and__(self, other: "Cover") -> "Cover":
        self._check_aligned(other)
        return Cover(
            [
                self.segment(i) & other.segment(i)
                for i in range(self.n_chunks)
            ],
            self._chunk_sizes,
        )

    def __or__(self, other: "Cover") -> "Cover":
        self._check_aligned(other)
        return Cover(
            [
                self.segment(i) | other.segment(i)
                for i in range(self.n_chunks)
            ],
            self._chunk_sizes,
        )

    # -- counting ----------------------------------------------------------

    def count(self) -> int:
        """Number of covered rows."""
        return sum(_popcount(self.segment(i)) for i in range(self.n_chunks))

    def group_counts(
        self, group_stacks: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Per-group covered counts against per-chunk group bit-stacks.

        ``group_stacks[i]`` is the ``(n_groups, n_words)`` packed
        membership stack of chunk ``i``.  The result equals a ``bincount``
        of the group codes inside the dense mask, computed chunk by chunk
        without densifying.
        """
        if len(group_stacks) != self.n_chunks:
            raise ValueError(
                f"{len(group_stacks)} group stacks for "
                f"{self.n_chunks} chunks"
            )
        total: np.ndarray | None = None
        for i, stack in enumerate(group_stacks):
            counts = _popcount_rows(stack & self.segment(i))
            total = counts if total is None else total + counts
        if total is None:
            return np.zeros(0, dtype=np.int64)
        return total

    # -- densification -----------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Dense boolean mask over all rows (chunks concatenated)."""
        if self.n_chunks == 1:
            return self.dense_segment(0)
        out = np.empty(self.n_rows, dtype=bool)
        offset = 0
        for i, n in enumerate(self._chunk_sizes):
            out[offset:offset + n] = self.dense_segment(i)
            offset += n
        return out

    # -- misc --------------------------------------------------------------

    @property
    def nbytes_packed(self) -> int:
        """Total packed payload size in bytes (materialises segments)."""
        return sum(self.segment(i).nbytes for i in range(self.n_chunks))

    def __getstate__(self):
        # Pickles are always materialised packed words, never thunks —
        # this is what keeps checkpoint payloads at ~n_rows / 8 bytes.
        return (
            self._chunk_sizes,
            [self.segment(i) for i in range(self.n_chunks)],
        )

    def __setstate__(self, state) -> None:
        chunk_sizes, segments = state
        self._chunk_sizes = tuple(chunk_sizes)
        self._segments = list(segments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lazy = sum(1 for s in self._segments if callable(s))
        return (
            f"Cover(n_rows={self.n_rows}, n_chunks={self.n_chunks}, "
            f"lazy={lazy})"
        )
