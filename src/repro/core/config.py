"""Configuration shared by SDAD-CS and the surrounding search.

The defaults mirror the paper's experimental setup (Section 5): initial
``alpha = 0.05``, ``delta = 0.1``, search tree stunted at 5 levels, top-100
patterns.  ``MinerConfig.no_pruning()`` produces the SDAD-CS NP variant used
as the level playing field in the quantitative comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..resilience.policy import ResiliencePolicy

__all__ = ["MinerConfig"]


@dataclass(frozen=True)
class MinerConfig:
    """All knobs of the contrast-set miner.

    Attributes
    ----------
    delta:
        Minimum support difference for a contrast to be *large* (Eq. 2).
    alpha:
        Initial significance level; adjusted down the search tree via the
        Bonferroni ladder (Section 3).
    max_tree_depth:
        Maximum number of attributes in an itemset (the paper stunts the
        search tree at 5 levels).
    max_split_depth:
        Maximum recursion depth of the median splitting inside SDAD-CS
        (a safety bound; the optimistic estimate and the expected-count
        rule normally stop recursion much earlier).
    k:
        Size of the top-k pattern list.
    interest_measure:
        Registered name of the interest measure to optimise
        (``support_difference``, ``purity_ratio``, ``surprising``, ...).
    merge:
        Whether to run the bottom-up merge of contiguous similar spaces.
    merge_alpha:
        Significance level for the merge similarity test (chi-square between
        two spaces' group-count vectors); spaces merge when they are *not*
        significantly different.
    min_expected_count:
        Expected-cell-count floor for the chi-square approximation.
    prune_min_deviation / prune_expected_count / prune_optimistic /
    prune_redundant / prune_pure_space:
        Individual pruning strategies (Section 4.3).  ``no_pruning()``
        switches all five off.
    use_bonferroni:
        Whether to walk alpha down the Bonferroni ladder with search level.
    """

    delta: float = 0.1
    alpha: float = 0.05
    max_tree_depth: int = 5
    max_split_depth: int = 12
    k: int = 100
    interest_measure: str = "support_difference"
    split_statistic: str = "median"
    """Where to split a continuous attribute inside the current region:
    ``"median"`` (the paper's choice) or ``"mean"`` (Section 4.1 mentions
    both; the ablation bench compares them)."""
    counting_backend: str = "mask"
    """Support-counting backend: ``"mask"`` (boolean masks, the reference
    path) or ``"bitmap"`` (packed bit-vectors + per-group popcount with a
    context-coverage cache — the fast path for categorical-heavy data).
    See :mod:`repro.counting`."""
    backend_cache_size: int | None = None
    """Capacity of the counting backend's memo cache: the bitmap
    backend's context-coverage LRU, or — when mining a chunked dataset —
    the chunk-aware backend's (chunk digest, itemset) counts LRU.
    ``None`` keeps each backend's default.  The mask backend keeps no
    cache, so setting this with ``counting_backend="mask"`` is a
    configuration error (caches never change mined patterns, only
    speed)."""
    batch_evaluation: bool = True
    """Drive the search through the vectorized batch evaluation engine
    (:class:`repro.core.batch.BatchEvaluator`): all candidates of one
    (level, attribute-combination) — and all child spaces of one SDAD-CS
    recursion frame — are counted and pruned as a single
    ``(N, n_groups)`` array program.  Batch and scalar drivers produce
    byte-identical patterns and prune accounting (DESIGN.md §12);
    ``False`` is the escape hatch back to the per-candidate scalar
    path."""
    merge: bool = True
    merge_alpha: float = 0.05
    min_expected_count: float = 5.0
    prune_min_deviation: bool = True
    prune_expected_count: bool = True
    prune_optimistic: bool = True
    prune_redundant: bool = True
    prune_pure_space: bool = True
    use_bonferroni: bool = True
    report_all_spaces: bool = False
    """When True, SDAD-CS reports *every* contrast space encountered
    during the recursion — parents, children, and deferred (Dtemp) spaces
    alike — instead of the consolidated merged list.  This is part of the
    SDAD-CS NP configuration: with the redundancy-oriented pruning off,
    the paper's comparison deliberately keeps the redundant high-interest
    variants in the top-k (Section 5, experimental setup)."""
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    """Fault-tolerance policy of the parallel scheduler (per-task retry
    count, timeout, backoff, and the serial-fallback switch).  Never
    changes mined patterns — only how failures are survived.  See
    :mod:`repro.resilience`."""

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if not 0 <= self.delta < 1:
            raise ValueError("delta must be in [0, 1)")
        if self.max_tree_depth < 1:
            raise ValueError("max_tree_depth must be >= 1")
        if self.max_split_depth < 1:
            raise ValueError("max_split_depth must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.split_statistic not in ("median", "mean"):
            raise ValueError("split_statistic must be 'median' or 'mean'")
        if self.counting_backend not in ("mask", "bitmap"):
            raise ValueError(
                "counting_backend must be 'mask' or 'bitmap'"
            )
        if self.backend_cache_size is not None:
            if self.backend_cache_size < 1:
                raise ValueError("backend_cache_size must be >= 1")
            if self.counting_backend == "mask":
                raise ValueError(
                    "backend_cache_size requires counting_backend="
                    "'bitmap' (the mask backend keeps no cache)"
                )
        if not isinstance(self.resilience, ResiliencePolicy):
            raise TypeError("resilience must be a ResiliencePolicy")

    def no_pruning(self) -> "MinerConfig":
        """The SDAD-CS NP configuration: same engine, all novel pruning
        strategies disabled (Section 5, experimental setup)."""
        return replace(
            self,
            prune_optimistic=False,
            prune_redundant=False,
            prune_pure_space=False,
            report_all_spaces=True,
        )

    def with_(self, **changes) -> "MinerConfig":
        """Functional update helper (``config.with_(delta=0.05)``)."""
        return replace(self, **changes)
