"""Meaningfulness filters: non-redundant, productive, independently
productive contrast patterns (paper Sections 3 and 4.3, Tables 3 and 6).

A contrast pattern is *meaningful* when it is

* **non-redundant** — its support difference is not statistically the same
  as one of its immediate subsets' (the pregnant-implies-female example);
* **productive** — its support difference exceeds what its parts would
  produce under independence (Eq. 17), and the excess is statistically
  significant;
* **independently productive** — it remains a contrast after removing the
  rows already explained by any of its supersets in the result list (the
  hurricane example: only the full 3-condition pattern matters).

These checks are applied as a post-filter by
:class:`~repro.core.miner.ContrastSetMiner` and are counted standalone for
the Table 6 census by :func:`classify_patterns`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..dataset.table import Dataset
from .contrast import ContrastPattern, evaluate_itemset
from .items import Itemset
from .pruning import redundant_against_subset
from .stats import chi_square_independence, contingency_from_counts

__all__ = [
    "is_redundant",
    "is_productive",
    "independently_productive_mask",
    "MeaningfulnessReport",
    "classify_patterns",
    "filter_meaningful",
]


def _immediate_subsets(itemset: Itemset) -> list[Itemset]:
    return [
        itemset.without_attribute(attr) for attr in itemset.attributes
    ]


def is_redundant(
    pattern: ContrastPattern, dataset: Dataset, alpha: float = 0.05
) -> bool:
    """Redundancy against the pattern's immediate (leave-one-item-out)
    subsets, evaluated on the dataset.

    A pattern is redundant when some subset has a statistically
    indistinguishable support difference (CLT band, Eq. 14-16) — the
    specialised item adds nothing (e.g. *pregnant & female* vs
    *pregnant*).  Level-1 patterns are never redundant.
    """
    if len(pattern.itemset) <= 1:
        return False
    for subset in _immediate_subsets(pattern.itemset):
        sub_pattern = evaluate_itemset(subset, dataset)
        if redundant_against_subset(pattern, sub_pattern, alpha):
            return True
    return False


def is_productive(
    pattern: ContrastPattern, dataset: Dataset, alpha: float = 0.05
) -> bool:
    """Productivity test (Eq. 17 + significance).

    For every binary partition ``(a, c\\a)`` of the itemset the observed
    support difference must exceed the difference expected if the two parts
    occurred independently within each group::

        diff_c > supp_x(a) * supp_x(c\\a) - supp_y(a) * supp_y(c\\a)

    where ``x`` is the larger group.  The excess must additionally be
    statistically significant; following the paper we use a chi-square
    test — here, of the association between the two parts' coverage within
    the dominant group (independence there would make the observed support
    the expected product, i.e. the pattern unproductive).

    Level-1 patterns are productive by definition.
    """
    itemset = pattern.itemset
    if len(itemset) <= 1:
        return True

    supports = pattern.supports
    order = sorted(
        range(len(supports)),
        key=lambda g: pattern.group_sizes[g],
        reverse=True,
    )
    x, y = order[0], order[1]
    if supports[x] < supports[y]:
        x, y = y, x
    diff_c = supports[x] - supports[y]

    cover_cache: dict[Itemset, np.ndarray] = {}

    def cover(sub: Itemset) -> np.ndarray:
        if sub not in cover_cache:
            cover_cache[sub] = sub.cover(dataset)
        return cover_cache[sub]

    group_codes = dataset.group_codes
    for part_a, part_b in itemset.partitions():
        pat_a = evaluate_itemset(part_a, dataset)
        pat_b = evaluate_itemset(part_b, dataset)
        expected_diff = (
            pat_a.supports[x] * pat_b.supports[x]
            - pat_a.supports[y] * pat_b.supports[y]
        )
        if diff_c <= expected_diff:
            return False
        # Significance: association between the parts inside group x.
        in_x = group_codes == x
        a_mask = cover(part_a)[in_x]
        b_mask = cover(part_b)[in_x]
        table = np.array(
            [
                [np.sum(a_mask & b_mask), np.sum(a_mask & ~b_mask)],
                [np.sum(~a_mask & b_mask), np.sum(~a_mask & ~b_mask)],
            ],
            dtype=np.float64,
        )
        result = chi_square_independence(table)
        positively_associated = (
            table[0, 0] * table[1, 1] > table[0, 1] * table[1, 0]
        )
        if not (result.p_value < alpha and positively_associated):
            return False
    return True


def independently_productive_mask(
    patterns: Sequence[ContrastPattern],
    dataset: Dataset,
    alpha: float = 0.05,
) -> list[bool]:
    """For each pattern, is it independently productive w.r.t. the list?

    Pattern ``I`` fails when for some specialisation ``S`` *in the list*,
    the rows covered by ``I`` but not by ``S`` no longer form a
    significant contrast in the same direction — i.e. ``I`` was a contrast
    only because of ``S``'s extra items (paper Section 4.3: only supersets
    present in the final list are checked).

    Specialisation is tested by *region subsumption* rather than exact
    itemset inclusion: adaptive binning places slightly different
    boundaries in different contexts, so ``age <= 25.0`` legitimately
    counts ``age <= 24.8 and hours > 40`` as its specialisation.  The
    residual must also keep the pattern's dominant group: a residual that
    flips direction means the original direction came entirely from the
    specialisation's region.
    """
    covers = [p.itemset.cover(dataset) for p in patterns]
    flags: list[bool] = []
    for i, pattern in enumerate(patterns):
        ok = True
        for j, other in enumerate(patterns):
            if i == j:
                continue
            specialises = (
                pattern.itemset != other.itemset
                and pattern.itemset.region_subsumes(other.itemset)
                and not other.itemset.region_subsumes(pattern.itemset)
            )
            if not specialises:
                continue
            residual = covers[i] & ~covers[j]
            counts = dataset.group_counts(residual)
            table = contingency_from_counts(counts, dataset.group_sizes)
            residual_pattern = ContrastPattern(
                itemset=pattern.itemset,
                counts=tuple(int(c) for c in counts),
                group_sizes=dataset.group_sizes,
                group_labels=dataset.group_labels,
            )
            still_contrast = (
                chi_square_independence(table).significant_at(alpha)
                and residual_pattern.dominant_group == pattern.dominant_group
            )
            if not still_contrast:
                ok = False
                break
        flags.append(ok)
    return flags


@dataclass
class MeaningfulnessReport:
    """Per-pattern meaningfulness classification (the Table 6 census)."""

    patterns: list[ContrastPattern]
    redundant: list[bool]
    unproductive: list[bool]
    not_independently_productive: list[bool]

    @property
    def meaningful(self) -> list[bool]:
        return [
            not (r or u or n)
            for r, u, n in zip(
                self.redundant,
                self.unproductive,
                self.not_independently_productive,
            )
        ]

    @property
    def n_meaningful(self) -> int:
        return sum(self.meaningful)

    @property
    def n_meaningless(self) -> int:
        return len(self.patterns) - self.n_meaningful

    def meaningful_patterns(self) -> list[ContrastPattern]:
        return [
            p for p, ok in zip(self.patterns, self.meaningful) if ok
        ]


def classify_patterns(
    patterns: Sequence[ContrastPattern],
    dataset: Dataset,
    alpha: float = 0.05,
) -> MeaningfulnessReport:
    """Classify every pattern as redundant / unproductive / not
    independently productive (Table 6's meaningful-vs-meaningless counts).
    """
    patterns = list(patterns)
    redundant = [is_redundant(p, dataset, alpha) for p in patterns]
    unproductive = [not is_productive(p, dataset, alpha) for p in patterns]
    independent = independently_productive_mask(patterns, dataset, alpha)
    return MeaningfulnessReport(
        patterns=patterns,
        redundant=redundant,
        unproductive=unproductive,
        not_independently_productive=[not x for x in independent],
    )


def filter_meaningful(
    patterns: Sequence[ContrastPattern],
    dataset: Dataset,
    alpha: float = 0.05,
) -> list[ContrastPattern]:
    """Keep only the meaningful patterns (the miner's final output step)."""
    return classify_patterns(patterns, dataset, alpha).meaningful_patterns()
