"""Statistical machinery used throughout the miner.

Includes the chi-square independence test STUCCO and SDAD-CS rely on
(Eq. 3), Fisher's exact test for tiny tables, the Bonferroni-style alpha
ladder of Bay & Pazzani, the central-limit-theorem difference bound used by
the redundancy pruning rule (Eq. 14-16), and the Wilcoxon-Mann-Whitney test
used by the Table 4 comparison harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from functools import lru_cache

from scipy import special as _scipy_special
from scipy import stats as _scipy_stats

__all__ = [
    "ChiSquareResult",
    "chi_square_independence",
    "chi_square_counts",
    "chi_square_counts_batch",
    "contingency_from_counts",
    "fisher_exact_2x2",
    "expected_counts",
    "min_expected_count",
    "min_expected_count_batch",
    "AlphaLadder",
    "clt_difference_bound",
    "clt_difference_bound_batch",
    "difference_is_statistically_same",
    "mann_whitney_u",
]


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of a chi-square test of independence."""

    statistic: float
    p_value: float
    dof: int

    def significant_at(self, alpha: float) -> bool:
        return self.p_value < alpha


def contingency_from_counts(
    in_counts: Sequence[int] | np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Build the 2 x k contingency table (in-space vs out-of-space x group).

    Row 0 holds the per-group counts of rows covered by the itemset, row 1
    the per-group counts of rows not covered.  This is the table STUCCO's
    significance test is computed on.
    """
    in_counts = np.asarray(in_counts, dtype=np.float64)
    group_sizes = np.asarray(group_sizes, dtype=np.float64)
    if in_counts.shape != group_sizes.shape:
        raise ValueError("in_counts and group_sizes must align")
    if np.any(in_counts > group_sizes):
        raise ValueError("count exceeds group size")
    return np.vstack([in_counts, group_sizes - in_counts])


def expected_counts(table: np.ndarray) -> np.ndarray:
    """Expected cell counts under independence for a contingency table."""
    table = np.asarray(table, dtype=np.float64)
    total = table.sum()
    if total <= 0:
        return np.zeros_like(table)
    return np.outer(table.sum(axis=1), table.sum(axis=0)) / total


def min_expected_count(
    in_counts: Sequence[int] | np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
) -> float:
    """Smallest expected cell count of the itemset's contingency table.

    The paper prunes itemsets whose expected occurrence is below 5 because
    the chi-square approximation is unreliable there (Section 3).
    """
    table = contingency_from_counts(in_counts, group_sizes)
    expected = expected_counts(table)
    return float(expected.min()) if expected.size else 0.0


def chi_square_independence(
    table: np.ndarray, yates: bool = False
) -> ChiSquareResult:
    """Pearson chi-square test of independence on a contingency table.

    Rows or columns whose marginal is zero are dropped (they carry no
    information and would produce 0/0 expected counts).  Returns a
    non-significant result (p = 1) when the reduced table is degenerate.
    """
    table = np.asarray(table, dtype=np.float64)
    if table.ndim != 2:
        raise ValueError("contingency table must be 2-dimensional")
    table = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
    if table.shape[0] < 2 or table.shape[1] < 2:
        return ChiSquareResult(0.0, 1.0, 0)
    expected = expected_counts(table)
    diff = np.abs(table - expected)
    if yates and table.shape == (2, 2):
        diff = np.maximum(diff - 0.5, 0.0)
    statistic = float((diff**2 / expected).sum())
    dof = (table.shape[0] - 1) * (table.shape[1] - 1)
    # chdtrc is the kernel chi2.sf dispatches to; calling it directly
    # skips scipy's distribution machinery (~170us per scalar call).
    p_value = float(_scipy_special.chdtrc(dof, statistic))
    return ChiSquareResult(statistic, p_value, dof)


def _batch_count_arrays(
    in_counts: np.ndarray, group_sizes: Sequence[int] | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate and float-convert an ``(N, G)`` counts matrix + sizes."""
    counts = np.asarray(in_counts, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.float64)
    if counts.ndim != 2:
        raise ValueError("batch counts must be 2-dimensional (N, n_groups)")
    if sizes.shape != (counts.shape[1],):
        raise ValueError("in_counts and group_sizes must align")
    if np.any(counts > sizes[None, :]):
        raise ValueError("count exceeds group size")
    return counts, sizes


def chi_square_counts_batch(
    in_counts: np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Chi-square independence test for N contingency rows at once.

    Row ``i`` of ``in_counts`` is one itemset's per-group covered counts;
    the test is run on each implied ``2 x G`` table exactly as
    ``chi_square_independence(contingency_from_counts(row, sizes))`` would
    — every floating-point reduction mirrors the scalar op sequence
    (same pairwise summation over the same element order), so results are
    bit-identical, not merely close.  Returns ``(statistic, p_value,
    dof)`` vectors; degenerate rows get ``(0.0, 1.0, 0)``.
    """
    counts, sizes = _batch_count_arrays(in_counts, group_sizes)
    n = counts.shape[0]
    stat = np.zeros(n, dtype=np.float64)
    p = np.ones(n, dtype=np.float64)
    dof = np.zeros(n, dtype=np.int64)
    if n == 0:
        return stat, p, dof
    # A column's marginal is count + (size - count) == size exactly, so
    # the scalar path's column-drop mask is constant across the batch.
    col_keep = sizes > 0
    if not col_keep.all():
        counts = np.ascontiguousarray(counts[:, col_keep])
        sizes = sizes[col_keep]
    g = counts.shape[1]
    if g < 2:
        return stat, p, dof
    # Every intermediate marginal here is a sum of integer-valued
    # float64s, hence exact regardless of reduction order: the column
    # marginal ``count + (size - count)`` is ``size``, and the table
    # total is ``sizes.sum()`` — both constant across the batch — while
    # the row marginal r1 is ``total - r0``.  Using the closed forms
    # skips two (N, G) temporaries and the concatenated total reduction
    # while producing bit-identical expected counts.
    total = float(sizes.sum())
    r0 = counts.sum(axis=1)
    valid = (r0 > 0) & (r0 < total)
    if not valid.any():
        return stat, p, dof
    if not valid.all():
        counts = counts[valid]
        r0 = r0[valid]
    rest = sizes[None, :] - counts
    r1 = total - r0
    # On valid rows both row marginals are positive and every kept column
    # size is positive, so the expected counts are strictly positive —
    # no division guard needed.
    e0 = r0[:, None] * sizes[None, :] / total
    e1 = r1[:, None] * sizes[None, :] / total
    d0 = np.abs(counts - e0)
    d1 = np.abs(rest - e1)
    # Flattened (2, G) C-order is [row0..., row1...]; laying the terms
    # out contiguously in that order reproduces the element order of the
    # scalar ``(diff**2 / expected).sum()`` pairwise reduction.
    terms = np.empty((counts.shape[0], 2 * g), dtype=np.float64)
    terms[:, :g] = d0**2 / e0
    terms[:, g:] = d1**2 / e1
    s = terms.sum(axis=1)
    stat[valid] = s
    dof[valid] = g - 1
    p[valid] = _scipy_special.chdtrc(g - 1, s)
    return stat, p, dof


def chi_square_counts(
    in_counts: Sequence[int] | np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
) -> ChiSquareResult:
    """Scalar wrapper over :func:`chi_square_counts_batch` (N = 1)."""
    stat, p, dof = chi_square_counts_batch(
        np.asarray(in_counts, dtype=np.float64)[None, :], group_sizes
    )
    return ChiSquareResult(float(stat[0]), float(p[0]), int(dof[0]))


def min_expected_count_batch(
    in_counts: np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Smallest expected cell count for N contingency rows at once.

    Bit-identical to ``min_expected_count(row, sizes)`` per row: the
    expected counts are computed over the *full* (undropped) table, as the
    scalar path does.
    """
    counts, sizes = _batch_count_arrays(in_counts, group_sizes)
    n = counts.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    # The full-table column marginal of column g is exactly ``sizes[g]``
    # and the table total is exactly ``sizes.sum()`` (sums of
    # integer-valued float64s are order-independent and exact), so the
    # expected counts are ``r * sizes[g] / total`` — monotone in
    # ``sizes[g]`` for either row marginal ``r >= 0``.  The smallest
    # expected cell is therefore ``min(r0, r1) * sizes.min() / total``,
    # computed with the same multiply-then-divide the full matrix would
    # apply to that cell: bit-identical, in O(N) instead of O(N x G).
    total = float(sizes.sum())
    if total <= 0:
        return np.zeros(n, dtype=np.float64)
    r0 = counts.sum(axis=1)
    r1 = total - r0
    return np.minimum(r0, r1) * float(sizes.min()) / total


def fisher_exact_2x2(table: np.ndarray) -> float:
    """Two-sided Fisher exact test p-value for a 2x2 table.

    Used as the small-sample fallback when expected counts drop under 5 and
    a caller still needs a significance decision (e.g. merging tiny spaces).
    """
    table = np.asarray(table, dtype=np.int64)
    if table.shape != (2, 2):
        raise ValueError("fisher exact test needs a 2x2 table")
    return float(_scipy_stats.fisher_exact(table)[1])


class AlphaLadder:
    """Bonferroni-style alpha adjustment over search-tree levels.

    Bay & Pazzani divide the overall significance budget across levels:
    level ``l`` receives at most ``alpha / 2^l`` which is then split across
    the candidates actually tested at that level, and the ladder is
    monotone non-increasing so deeper levels are never *easier* to pass.
    """

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self._level_alphas: dict[int, float] = {}

    def alpha_for_level(self, level: int, n_candidates: int = 1) -> float:
        """Adjusted alpha for a 1-based search level with ``n_candidates``
        simultaneous tests."""
        if level < 1:
            raise ValueError("levels are 1-based")
        budget = self.alpha / (2**level) / max(1, n_candidates)
        previous = self._level_alphas.get(level - 1, self.alpha)
        adjusted = min(budget, previous)
        existing = self._level_alphas.get(level)
        if existing is None or adjusted < existing:
            self._level_alphas[level] = adjusted
        return self._level_alphas[level]


@lru_cache(maxsize=256)
def _z_quantile(alpha: float) -> float:
    """Normal ``1 - alpha/2`` quantile, memoized per alpha.

    ndtri is the kernel norm.ppf dispatches to; alpha is constant per
    search level, so the cache removes the scipy call from the hot path.
    """
    return float(_scipy_special.ndtri(1.0 - alpha / 2.0))


def clt_difference_bound(
    supp_x: float,
    supp_y: float,
    n_x: int,
    n_y: int,
    alpha: float = 0.05,
) -> float:
    """Half-width of the CLT confidence band on a support difference.

    Implements Eq. 14-16: the sampling variance of the support difference
    between two groups is ``p_x(1-p_x)/n_x + p_y(1-p_y)/n_y``; the band is
    the normal ``1 - alpha/2`` quantile times that standard error.  (The
    paper writes ``alpha * sqrt(a+b)`` — a significance level only makes
    sense here as its z-quantile, see DESIGN.md substitution #5.)
    """
    if n_x <= 0 or n_y <= 0:
        return math.inf
    a = supp_x * (1.0 - supp_x) / n_x
    b = supp_y * (1.0 - supp_y) / n_y
    return _z_quantile(alpha) * math.sqrt(a + b)


def clt_difference_bound_batch(
    supp_x: np.ndarray,
    supp_y: np.ndarray,
    n_x: np.ndarray,
    n_y: np.ndarray,
    alpha: float = 0.05,
) -> np.ndarray:
    """Vectorized :func:`clt_difference_bound` over aligned arrays.

    All inputs broadcast; elements with a non-positive sample size get an
    infinite bound, exactly like the scalar function.  IEEE-754 gives the
    same double result for the same op sequence, so each element is
    bit-identical to its scalar counterpart.
    """
    sx = np.asarray(supp_x, dtype=np.float64)
    sy = np.asarray(supp_y, dtype=np.float64)
    nx = np.asarray(n_x, dtype=np.float64)
    ny = np.asarray(n_y, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        a = sx * (1.0 - sx) / nx
        b = sy * (1.0 - sy) / ny
        out = _z_quantile(alpha) * np.sqrt(a + b)
    return np.where((nx <= 0) | (ny <= 0), math.inf, out)


def difference_is_statistically_same(
    diff_current: float,
    diff_subset: float,
    subset_supp_x: float,
    subset_supp_y: float,
    n_x: int,
    n_y: int,
    alpha: float = 0.05,
) -> bool:
    """Redundancy test of Section 4.3: is the current itemset's support
    difference within the CLT band around its subset's difference?

    If yes, the specialisation adds nothing over the subset and the
    itemset (and its supersets) are pruned as redundant.
    """
    bound = clt_difference_bound(
        subset_supp_x, subset_supp_y, n_x, n_y, alpha
    )
    return abs(diff_current - diff_subset) <= bound


def mann_whitney_u(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> float:
    """Two-sided Wilcoxon-Mann-Whitney p-value (Table 4's ``*`` marker).

    Returns 1.0 when either sample is empty or both samples are constant
    and identical (no evidence of a difference).
    """
    a = np.asarray(list(sample_a), dtype=np.float64)
    b = np.asarray(list(sample_b), dtype=np.float64)
    if a.size == 0 or b.size == 0:
        return 1.0
    if np.all(a == a[0]) and np.all(b == b[0]) and a[0] == b[0]:
        return 1.0
    try:
        return float(
            _scipy_stats.mannwhitneyu(a, b, alternative="two-sided").pvalue
        )
    except ValueError:
        return 1.0
