"""Interest measure registry (paper Section 4.2).

The paper's default interest measure is the support difference; it also
defines Purity Ratio (Eq. 12) and the Surprising Measure (Eq. 13), and the
comparison harness additionally needs WRAcc (which Novak et al. show to be
directly proportional to support difference for two groups — the basis of
Table 4's cross-community comparison).

Measures are plain functions ``ContrastPattern -> float`` registered under a
string name so that :class:`~repro.core.miner.MinerConfig` can select them
by name and ablation benches can sweep them.
"""

from __future__ import annotations

from typing import Callable, Dict

from .contrast import ContrastPattern

__all__ = [
    "MeasureFn",
    "register",
    "get",
    "evaluate",
    "available_measures",
    "support_difference",
    "purity_ratio",
    "surprising_measure",
    "wracc",
    "leverage",
    "lift",
]

MeasureFn = Callable[[ContrastPattern], float]

_REGISTRY: Dict[str, MeasureFn] = {}


def register(name: str) -> Callable[[MeasureFn], MeasureFn]:
    """Decorator registering an interest measure under ``name``."""

    def decorator(fn: MeasureFn) -> MeasureFn:
        if name in _REGISTRY:
            raise ValueError(f"measure {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return decorator


def get(name: str) -> MeasureFn:
    """Look up a measure by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown interest measure {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def evaluate(name: str, pattern: ContrastPattern) -> float:
    return get(name)(pattern)


def available_measures() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


@register("support_difference")
def support_difference(pattern: ContrastPattern) -> float:
    """Largest pairwise support difference (the paper's default, Eq. 2)."""
    return pattern.support_difference


@register("purity_ratio")
def purity_ratio(pattern: ContrastPattern) -> float:
    """Purity Ratio (Eq. 12)."""
    return pattern.purity_ratio


@register("surprising")
def surprising_measure(pattern: ContrastPattern) -> float:
    """SurPRising Measure = PR x Diff (Eq. 13)."""
    return pattern.surprising_measure


@register("wracc")
def wracc(pattern: ContrastPattern) -> float:
    """Weighted relative accuracy with the dominant group as target.

    WRAcc(cond -> g) = p(cond) * (p(g | cond) - p(g)).  For two groups this
    is proportional to the support difference (Novak et al. 2009), which is
    why the paper compares against Cortana's WRAcc-ranked subgroups using
    mean support difference.
    """
    total = sum(pattern.group_sizes)
    covered = pattern.total_count
    if total == 0 or covered == 0:
        return 0.0
    target = pattern.group_labels.index(pattern.dominant_group)
    p_cond = covered / total
    p_target = pattern.group_sizes[target] / total
    p_target_given_cond = pattern.counts[target] / covered
    return p_cond * (p_target_given_cond - p_target)


@register("leverage")
def leverage(pattern: ContrastPattern) -> float:
    """Leverage of coverage vs dominant-group membership.

    leverage = p(cond & g) - p(cond) * p(g); the quantity the paper notes
    its productivity formula (Eq. 17) is related to.
    """
    total = sum(pattern.group_sizes)
    if total == 0:
        return 0.0
    target = pattern.group_labels.index(pattern.dominant_group)
    p_joint = pattern.counts[target] / total
    p_cond = pattern.total_count / total
    p_target = pattern.group_sizes[target] / total
    return p_joint - p_cond * p_target


@register("lift")
def lift(pattern: ContrastPattern) -> float:
    """Lift of the dominant group inside the covered region."""
    total = sum(pattern.group_sizes)
    covered = pattern.total_count
    if total == 0 or covered == 0:
        return 0.0
    target = pattern.group_labels.index(pattern.dominant_group)
    p_target = pattern.group_sizes[target] / total
    if p_target == 0:
        return 0.0
    p_target_given_cond = pattern.counts[target] / covered
    return p_target_given_cond / p_target
