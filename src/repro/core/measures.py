"""Interest measure registry (paper Section 4.2).

The paper's default interest measure is the support difference; it also
defines Purity Ratio (Eq. 12) and the Surprising Measure (Eq. 13), and the
comparison harness additionally needs WRAcc (which Novak et al. show to be
directly proportional to support difference for two groups — the basis of
Table 4's cross-community comparison).

Measures are plain functions ``ContrastPattern -> float`` registered under a
string name so that :class:`~repro.core.miner.MinerConfig` can select them
by name and ablation benches can sweep them.

The batch evaluation engine (DESIGN.md §12) additionally registers
*vectorized* forms under the same names: ``(counts (N, G) array,
group_sizes) -> (N,) float vector``, bit-identical per row to the scalar
measure on the corresponding pattern.  :func:`get_batch` returns ``None``
for measures without a vectorized form (``wracc``/``leverage``/``lift``),
in which case callers fall back to the scalar function per candidate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .contrast import ContrastPattern

__all__ = [
    "MeasureFn",
    "BatchMeasureFn",
    "register",
    "register_batch",
    "get",
    "get_batch",
    "evaluate",
    "available_measures",
    "supports_from_counts",
    "support_difference",
    "purity_ratio",
    "surprising_measure",
    "wracc",
    "leverage",
    "lift",
]

MeasureFn = Callable[[ContrastPattern], float]
BatchMeasureFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

_REGISTRY: Dict[str, MeasureFn] = {}
_BATCH_REGISTRY: Dict[str, BatchMeasureFn] = {}


def register(name: str) -> Callable[[MeasureFn], MeasureFn]:
    """Decorator registering an interest measure under ``name``."""

    def decorator(fn: MeasureFn) -> MeasureFn:
        if name in _REGISTRY:
            raise ValueError(f"measure {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return decorator


def register_batch(
    name: str,
) -> Callable[[BatchMeasureFn], BatchMeasureFn]:
    """Decorator registering the vectorized form of measure ``name``.

    The scalar form must already be registered; the batch form must
    return, for each counts row, the exact double the scalar measure
    yields on the corresponding :class:`ContrastPattern`.
    """

    def decorator(fn: BatchMeasureFn) -> BatchMeasureFn:
        if name not in _REGISTRY:
            raise ValueError(
                f"register the scalar measure {name!r} before its batch form"
            )
        if name in _BATCH_REGISTRY:
            raise ValueError(f"batch measure {name!r} already registered")
        _BATCH_REGISTRY[name] = fn
        return fn

    return decorator


def get(name: str) -> MeasureFn:
    """Look up a measure by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown interest measure {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def get_batch(name: str) -> Optional[BatchMeasureFn]:
    """Vectorized form of measure ``name``, or ``None`` if it only has a
    scalar implementation (callers then evaluate per candidate)."""
    get(name)  # surface unknown-measure errors identically to get()
    return _BATCH_REGISTRY.get(name)


def evaluate(name: str, pattern: ContrastPattern) -> float:
    return get(name)(pattern)


def available_measures() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


@register("support_difference")
def support_difference(pattern: ContrastPattern) -> float:
    """Largest pairwise support difference (the paper's default, Eq. 2)."""
    return pattern.support_difference


@register("purity_ratio")
def purity_ratio(pattern: ContrastPattern) -> float:
    """Purity Ratio (Eq. 12)."""
    return pattern.purity_ratio


@register("surprising")
def surprising_measure(pattern: ContrastPattern) -> float:
    """SurPRising Measure = PR x Diff (Eq. 13)."""
    return pattern.surprising_measure


@register("wracc")
def wracc(pattern: ContrastPattern) -> float:
    """Weighted relative accuracy with the dominant group as target.

    WRAcc(cond -> g) = p(cond) * (p(g | cond) - p(g)).  For two groups this
    is proportional to the support difference (Novak et al. 2009), which is
    why the paper compares against Cortana's WRAcc-ranked subgroups using
    mean support difference.
    """
    total = sum(pattern.group_sizes)
    covered = pattern.total_count
    if total == 0 or covered == 0:
        return 0.0
    target = pattern.group_labels.index(pattern.dominant_group)
    p_cond = covered / total
    p_target = pattern.group_sizes[target] / total
    p_target_given_cond = pattern.counts[target] / covered
    return p_cond * (p_target_given_cond - p_target)


@register("leverage")
def leverage(pattern: ContrastPattern) -> float:
    """Leverage of coverage vs dominant-group membership.

    leverage = p(cond & g) - p(cond) * p(g); the quantity the paper notes
    its productivity formula (Eq. 17) is related to.
    """
    total = sum(pattern.group_sizes)
    if total == 0:
        return 0.0
    target = pattern.group_labels.index(pattern.dominant_group)
    p_joint = pattern.counts[target] / total
    p_cond = pattern.total_count / total
    p_target = pattern.group_sizes[target] / total
    return p_joint - p_cond * p_target


# ----------------------------------------------------------------------
# Vectorized measure kernels (batch evaluation engine, DESIGN.md §12)
# ----------------------------------------------------------------------


def supports_from_counts(
    counts: np.ndarray, group_sizes: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Per-group supports of an ``(N, G)`` counts matrix (Eq. 1).

    Row ``i`` equals ``ContrastPattern(counts=counts[i], ...).supports``
    exactly: zero-size groups get support 0.0 and the IEEE division is
    the same one Python performs per element.
    """
    counts = np.asarray(counts, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.float64)
    return np.divide(
        counts, sizes[None, :], out=np.zeros_like(counts),
        where=(sizes > 0)[None, :],
    )


@register_batch("support_difference")
def support_difference_batch(
    counts: np.ndarray, group_sizes: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Vectorized Eq. 2: max support minus min support per row."""
    sup = supports_from_counts(counts, group_sizes)
    return sup.max(axis=1) - sup.min(axis=1)


def _purity_ratio_rows(sup: np.ndarray) -> np.ndarray:
    s_hi = sup.max(axis=1)
    s_lo = sup.min(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = 1.0 - s_lo / s_hi
    return np.where(s_hi == 0.0, 0.0, ratio)


@register_batch("purity_ratio")
def purity_ratio_batch(
    counts: np.ndarray, group_sizes: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Vectorized Eq. 12 between the extreme-support groups per row."""
    return _purity_ratio_rows(supports_from_counts(counts, group_sizes))


@register_batch("surprising")
def surprising_measure_batch(
    counts: np.ndarray, group_sizes: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Vectorized Eq. 13: PR x Diff per row."""
    sup = supports_from_counts(counts, group_sizes)
    return _purity_ratio_rows(sup) * (sup.max(axis=1) - sup.min(axis=1))


@register("lift")
def lift(pattern: ContrastPattern) -> float:
    """Lift of the dominant group inside the covered region."""
    total = sum(pattern.group_sizes)
    covered = pattern.total_count
    if total == 0 or covered == 0:
        return 0.0
    target = pattern.group_labels.index(pattern.dominant_group)
    p_target = pattern.group_sizes[target] / total
    if p_target == 0:
        return 0.0
    p_target_given_cond = pattern.counts[target] / covered
    return p_target_given_cond / p_target
