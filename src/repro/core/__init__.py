"""Core contrast-set mining machinery (the paper's contribution)."""

from .config import MinerConfig
from .contrast import ContrastPattern, evaluate_itemset
from .cover import Cover
from .items import CategoricalItem, Interval, Item, Itemset, NumericItem
from .pipeline import (
    EvaluationContext,
    PruneRule,
    PruningPipeline,
    default_rules,
    format_prune_report,
)
from .sdad import SDADResult, sdad_cs
from .topk import TopKList

__all__ = [
    "MinerConfig",
    "ContrastPattern",
    "Cover",
    "evaluate_itemset",
    "CategoricalItem",
    "Interval",
    "Item",
    "Itemset",
    "NumericItem",
    "EvaluationContext",
    "PruneRule",
    "PruningPipeline",
    "default_rules",
    "format_prune_report",
    "SDADResult",
    "sdad_cs",
    "TopKList",
]
