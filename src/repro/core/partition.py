"""Spaces (axis-aligned boxes) and median partitioning for SDAD-CS.

SDAD-CS explores the joint range of a set of continuous attributes by
recursively splitting each attribute at its median *within the current
region* (``partition(ca)``, Algorithm 1 line 4) and forming all ``2^|ca|``
combinations of the halves (``find_combs(p)``, line 5).  After the search,
contiguous similar spaces are merged bottom-up, smallest hyper-volume first
(lines 26-29).

A :class:`Space` is the box plus its row coverage over the original
dataset (the coverage already includes any categorical context items), so
counting per-group membership in a space is one counting-backend call.
Coverage is held as a :class:`~repro.core.cover.Cover` — a packed
per-chunk bitset — so search state costs ``n_rows / 8`` bytes per space
and every intersection here runs on packed words.  Dense in-memory
datasets are the one-chunk special case; out-of-core
:class:`~repro.dataset.chunked.ChunkedView` datasets keep the working set
at O(chunk) because columns are only ever touched one chunk at a time
(DESIGN.md §13).
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..dataset.table import Dataset
from .cover import Cover
from .items import Interval, Itemset, NumericItem

__all__ = [
    "AttributeRange",
    "Space",
    "dataset_chunk_sizes",
    "full_space",
    "partition_median",
    "find_combinations",
    "are_contiguous",
    "merged_space",
]


#: Spaces with at most this many covered rows gather their in-space
#: values into one array for the split statistic (bit-identical to the
#: historical dense reduction); larger multi-chunk spaces use the
#: streaming exact-selection path so no full-length gather is ever
#: materialised.  Module-level so tests and benches can force either path.
MEDIAN_GATHER_BUDGET = 4_194_304

#: The streaming selector stops narrowing once the candidate window holds
#: at most this many values and finishes with one bounded gather +
#: introselect (the exactness fallback — also the escape hatch if pivot
#: narrowing ever stalls).
_STREAM_GATHER_FALLBACK = 2_097_152

#: Hard cap on narrowing passes before falling back to a gather.
_STREAM_MAX_PASSES = 64


def dataset_chunk_sizes(dataset: Dataset) -> tuple[int, ...]:
    """Per-chunk row counts of a dataset (``(n_rows,)`` when dense)."""
    metas = getattr(dataset, "chunk_metas", None)
    if metas is None:
        return (dataset.n_rows,)
    return tuple(m.n_rows for m in metas())


def _iter_chunk_columns(dataset: Dataset, name: str) -> Iterator[np.ndarray]:
    """Yield one canonical-dtype value array per chunk, in chunk order.

    Concatenating the yields equals ``dataset.column(name)`` exactly; a
    chunked view serves each chunk straight from its memory-mapped file
    so no full-length column is ever resident here.
    """
    per_chunk = getattr(dataset, "iter_chunk_columns", None)
    if per_chunk is None:
        yield dataset.column(name)
    else:
        yield from per_chunk(name)


@dataclass(frozen=True)
class AttributeRange:
    """Observed [min, max] range of a continuous attribute.

    Used to normalise interval widths so hyper-volumes of boxes over
    different attributes are comparable (the merge step sorts by volume).
    """

    attribute: str
    lo: float
    hi: float

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def normalised_width(self, interval: Interval) -> float:
        """Width of ``interval`` clipped to this range, as a fraction."""
        if self.width <= 0:
            return 1.0
        lo = max(interval.lo, self.lo)
        hi = min(interval.hi, self.hi)
        return max(0.0, hi - lo) / self.width

    @staticmethod
    def of(dataset: Dataset, attribute: str) -> "AttributeRange":
        # Chunk-wise min/max merge: identical to the dense reduction
        # (min of per-chunk minima is the global minimum) without ever
        # gathering the full column.
        lo = math.inf
        hi = -math.inf
        for values in _iter_chunk_columns(dataset, attribute):
            finite = values[~np.isnan(values)] if values.size else values
            if finite.size:
                lo = min(lo, float(finite.min()))
                hi = max(hi, float(finite.max()))
        if hi < lo:  # no finite values anywhere
            return AttributeRange(attribute, 0.0, 0.0)
        return AttributeRange(attribute, lo, hi)


class Space:
    """An axis-aligned box over continuous attributes with its coverage.

    Parameters
    ----------
    intervals:
        One :class:`Interval` per continuous attribute of the box.
    cover:
        Row coverage over the *original* dataset as a :class:`Cover`
        (a dense boolean array is accepted and packed as one chunk).
        It must already include the categorical context (the itemset
        ``c`` that SDAD-CS was called with), so per-group counting needs
        no further filtering.
    counts:
        Per-group row counts inside the cover.
    ranges:
        Full attribute ranges, for hyper-volume normalisation.
    """

    __slots__ = ("intervals", "cover", "counts", "_ranges", "_volume")

    def __init__(
        self,
        intervals: Mapping[str, Interval],
        cover: Cover | np.ndarray,
        counts: np.ndarray,
        ranges: Mapping[str, AttributeRange],
    ) -> None:
        self.intervals: dict[str, Interval] = dict(
            sorted(intervals.items())
        )
        if not isinstance(cover, Cover):
            cover = Cover.from_dense(np.asarray(cover, dtype=bool))
        self.cover = cover
        self.counts = np.asarray(counts, dtype=np.int64)
        self._ranges = dict(ranges)
        self._volume: float | None = None

    @property
    def mask(self) -> np.ndarray:
        """Deprecated dense coverage mask (densifies the packed cover)."""
        warnings.warn(
            "Space.mask is deprecated; use Space.cover (packed per-chunk "
            "bitset) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.cover.to_dense()

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self.intervals)

    @property
    def total_count(self) -> int:
        return int(self.counts.sum())

    @property
    def hypervolume(self) -> float:
        """Normalised n-volume of the box (Section 4.1: rectangles,
        cuboids, hyper-cubes)."""
        if self._volume is None:
            volume = 1.0
            for name, interval in self.intervals.items():
                rng = self._ranges.get(name)
                volume *= rng.normalised_width(interval) if rng else 1.0
            self._volume = volume
        return self._volume

    @property
    def ranges(self) -> dict[str, AttributeRange]:
        return dict(self._ranges)

    def numeric_items(self) -> tuple[NumericItem, ...]:
        return tuple(
            NumericItem(name, interval)
            for name, interval in self.intervals.items()
        )

    def itemset_with(self, categorical: Itemset) -> Itemset:
        """Full itemset: the categorical context plus this box's items."""
        itemset = categorical
        for item in self.numeric_items():
            itemset = itemset.with_item(item)
        return itemset

    def key(self) -> tuple:
        """Hashable identity of the box (used by the prune lookup table)."""
        return tuple(
            (name, iv.lo, iv.hi, iv.lo_closed, iv.hi_closed)
            for name, iv in self.intervals.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        box = ", ".join(f"{n}: {iv}" for n, iv in self.intervals.items())
        return f"Space({box}; n={self.total_count})"


def full_space(
    dataset: Dataset,
    attributes: Sequence[str],
    context_cover: Cover | np.ndarray,
    backend=None,
    *,
    ranges: Mapping[str, AttributeRange] | None = None,
) -> Space:
    """The level-0 space: each attribute's full observed range.

    The root interval is closed on both sides so the attribute minimum is
    covered; all descendant left-open splits inherit correct closure.
    ``context_cover`` is the categorical context's coverage (a dense
    boolean array is accepted and packed along the dataset's chunk
    boundaries).  ``backend`` optionally routes the group counting
    through a :class:`repro.counting.CountingBackend`.  ``ranges`` may
    supply precomputed :class:`AttributeRange` objects (they are a
    whole-column property, so callers running many contexts over the
    same dataset can share one cache); missing attributes are computed
    here.
    """
    intervals: dict[str, Interval] = {}
    used: dict[str, AttributeRange] = {}
    for name in attributes:
        rng = ranges.get(name) if ranges is not None else None
        if rng is None:
            rng = AttributeRange.of(dataset, name)
        used[name] = rng
        intervals[name] = Interval(rng.lo, rng.hi, True, True)
    ranges = used
    if not isinstance(context_cover, Cover):
        context_cover = Cover.from_dense(
            np.asarray(context_cover, dtype=bool),
            dataset_chunk_sizes(dataset),
        )
    if backend is not None:
        counts = backend.cover_group_counts(context_cover)
    else:
        counts = dataset.group_counts(context_cover.to_dense())
    return Space(intervals, context_cover, counts, ranges)


def _iter_space_values(
    dataset: Dataset, cover: Cover, attribute: str
) -> Iterator[np.ndarray]:
    """Yield each chunk's finite in-cover values of ``attribute``."""
    for i, values in enumerate(_iter_chunk_columns(dataset, attribute)):
        inside = values[cover.dense_segment(i)]
        yield inside[~np.isnan(inside)]


def _gather_space_values(
    dataset: Dataset, cover: Cover, attribute: str
) -> np.ndarray:
    """All finite in-cover values, in row order.

    Gathering chunk by chunk and concatenating yields element-wise
    exactly ``column[dense_mask]`` (chunks partition the rows in order),
    so every statistic computed on this array is bit-identical to the
    historical dense path.
    """
    parts = list(_iter_space_values(dataset, cover, attribute))
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def _weighted_median(medians: list[float], weights: list[int]) -> float:
    """Weighted median of per-chunk medians — the narrowing pivot.

    At least half the remaining window weight lies in chunks whose median
    is ≤ the pivot (and symmetrically ≥), so each narrowing pass discards
    at least ~25% of the window: termination is guaranteed.
    """
    med = np.asarray(medians, dtype=np.float64)
    order = np.argsort(med, kind="stable")
    w = np.asarray(weights, dtype=np.float64)[order]
    cum = np.cumsum(w)
    idx = int(np.searchsorted(cum, cum[-1] / 2.0))
    return float(med[order][min(idx, med.size - 1)])


def _select_kth(
    dataset: Dataset, cover: Cover, attribute: str, k: int
) -> float:
    """Exact k-th order statistic (0-based) of the finite in-cover values.

    Streaming distributed selection: keep a candidate value window
    ``[wlo, whi]``, pivot on the weighted median of per-chunk medians,
    count ``< pivot`` / ``== pivot`` in one pass, and narrow.  Once the
    window holds at most ``_STREAM_GATHER_FALLBACK`` values (or the pass
    cap is hit), gather just the window and introselect — the exactness
    fallback.  Peak memory is O(chunk) + O(window).
    """
    wlo = -math.inf
    whi = math.inf
    offset = 0  # count of values strictly below the window
    for _ in range(_STREAM_MAX_PASSES):
        medians: list[float] = []
        weights: list[int] = []
        total = 0
        for vals in _iter_space_values(dataset, cover, attribute):
            window = vals[(vals >= wlo) & (vals <= whi)]
            total += window.size
            if window.size:
                medians.append(float(np.median(window)))
                weights.append(int(window.size))
        if total <= _STREAM_GATHER_FALLBACK:
            break
        pivot = _weighted_median(medians, weights)
        c_less = 0
        c_eq = 0
        for vals in _iter_space_values(dataset, cover, attribute):
            window = vals[(vals >= wlo) & (vals <= whi)]
            c_less += int((window < pivot).sum())
            c_eq += int((window == pivot).sum())
        target = k - offset
        if target < c_less:
            whi = float(np.nextafter(pivot, -math.inf))
        elif target < c_less + c_eq:
            return pivot
        else:
            wlo = float(np.nextafter(pivot, math.inf))
            offset += c_less + c_eq
    parts = [
        vals[(vals >= wlo) & (vals <= whi)]
        for vals in _iter_space_values(dataset, cover, attribute)
    ]
    window = np.concatenate(parts) if len(parts) > 1 else parts[0]
    target = k - offset
    return float(np.partition(window, target)[target])


def _streaming_median_split(
    dataset: Dataset, cover: Cover, attribute: str
) -> float | None:
    """Exact median split point without gathering the in-cover values.

    Reproduces the dense path bit for bit: the two middle order
    statistics are found exactly (streaming selection), an even-length
    median is their IEEE-double mean — the same ``(a + b) / 2.0``
    ``np.median`` computes — and the heavy-ties fallback (split point at
    or above the maximum) returns the largest distinct value below the
    maximum, exactly ``np.unique(values)[-2]``.
    """
    n = 0
    vmin = math.inf
    vmax = -math.inf
    for vals in _iter_space_values(dataset, cover, attribute):
        n += vals.size
        if vals.size:
            vmin = min(vmin, float(vals.min()))
            vmax = max(vmax, float(vals.max()))
    if n == 0:
        return None
    if vmin == vmax:
        return None
    k1 = (n - 1) >> 1
    k2 = n >> 1
    v1 = _select_kth(dataset, cover, attribute, k1)
    if k2 == k1:
        median = v1
    else:
        # v_{k2} is either v_{k1} again (duplicates reach past k2) or
        # the smallest value above it — one counting pass decides.
        c_le = 0
        above = math.inf
        for vals in _iter_space_values(dataset, cover, attribute):
            c_le += int((vals <= v1).sum())
            gt = vals[vals > v1]
            if gt.size:
                above = min(above, float(gt.min()))
        v2 = v1 if c_le > k2 else above
        median = float((v1 + v2) / 2.0)
    if median >= vmax:
        # Heavy ties at the top: largest distinct value below the
        # maximum, computed as a per-chunk masked max merge.
        best = -math.inf
        for vals in _iter_space_values(dataset, cover, attribute):
            below = vals[vals < vmax]
            if below.size:
                best = max(best, float(below.max()))
        median = best
    return median


def partition_median(
    dataset: Dataset,
    space: Space,
    attribute: str,
    statistic: str = "median",
    *,
    fast: bool = False,
) -> tuple[Interval, Interval] | None:
    """Split one attribute's interval at the median (or mean) of the rows
    in ``space``.

    Returns ``None`` when the attribute cannot be split (no rows, or all
    values inside the space are identical — the "number of unique values far
    less than data points" caveat from Section 4.1).

    ``fast=True`` (the batch evaluation engine) fetches the minimum,
    maximum, and both middle order statistics from a single introselect
    pass instead of three separate reductions; an even-length median is
    the mean of the two partitioned middles either way, so the split
    point is bit-identical.

    Large multi-chunk spaces (more than :data:`MEDIAN_GATHER_BUDGET`
    covered rows) use a streaming exact-selection pass instead of
    gathering the in-space values — the split point is the same to the
    bit (see :func:`_streaming_median_split`); ``statistic="mean"``
    always gathers because float summation is not order-insensitive.
    """
    interval = space.intervals[attribute]
    if (
        statistic == "median"
        and space.cover.n_chunks > 1
        and space.total_count > MEDIAN_GATHER_BUDGET
    ):
        median = _streaming_median_split(dataset, space.cover, attribute)
        if median is None:
            return None
        left = Interval(interval.lo, median, interval.lo_closed, True)
        right = Interval(median, interval.hi, False, interval.hi_closed)
        return left, right
    values = _gather_space_values(dataset, space.cover, attribute)
    if values.size == 0:
        return None
    if fast and statistic == "median":
        n = values.size
        mid = n >> 1
        part = np.partition(values, sorted({0, max(mid - 1, 0), mid, n - 1}))
        vmin = float(part[0])
        vmax = float(part[-1])
        if vmin == vmax:
            return None
        if n & 1:
            median = float(part[mid])
        else:
            median = float((part[mid - 1] + part[mid]) / 2.0)
        if median >= vmax:
            distinct = np.unique(values)
            median = float(distinct[-2])
        left = Interval(interval.lo, median, interval.lo_closed, True)
        right = Interval(median, interval.hi, False, interval.hi_closed)
        return left, right
    vmin = float(values.min())
    vmax = float(values.max())
    if vmin == vmax:
        return None
    if statistic == "mean":
        # the mean of a non-constant sample is strictly inside
        # (vmin, vmax), so no tie fallback is ever needed
        median = float(values.mean())
    elif statistic == "median":
        median = float(np.median(values))
    else:
        raise ValueError("statistic must be 'median' or 'mean'")
    if median >= vmax:
        # Heavy ties at the top (the paper's "unique values far less than
        # data points" caveat): fall back to the largest distinct value
        # below the maximum so the right half stays non-empty.  Ties at
        # the bottom need no special case — a degenerate left interval
        # [min, min] is a legitimate half (e.g. the zero spike of a
        # zero-inflated frequency column).
        distinct = np.unique(values)
        median = float(distinct[-2])
    left = Interval(interval.lo, median, interval.lo_closed, True)
    right = Interval(median, interval.hi, False, interval.hi_closed)
    return left, right


def find_combinations(
    dataset: Dataset,
    space: Space,
    splits: Mapping[str, tuple[Interval, Interval]],
    backend=None,
    *,
    batch_counts: bool = False,
) -> list[Space]:
    """All combinations of the per-attribute halves (``find_combs``).

    Attributes without a split keep their current interval.  With ``k``
    split attributes this yields ``2^k`` child spaces; their covers
    partition the parent's cover.  ``backend`` optionally routes the
    per-space group counting through a
    :class:`repro.counting.CountingBackend`.

    The chunk-outer loop computes each half's coverage once per chunk,
    packs it, and ANDs packed words against the parent segment — every
    child that includes a half reuses its packed bits, each chunk's
    column is touched exactly once, and no dense full-length mask is
    ever built.  Child covers and counts are bit-identical to the
    historical dense path (``packbits(a & b) == packbits(a) &
    packbits(b)`` under zero padding).

    ``batch_counts=True`` (the batch evaluation engine, DESIGN.md §12)
    only changes the instrumentation: the children are additionally
    tallied as one batch invocation.
    """
    choices: list[tuple[str, tuple[Interval, ...]]] = []
    for name in space.attributes:
        if name in splits:
            choices.append((name, splits[name]))
        else:
            choices.append((name, (space.intervals[name],)))

    split_axes = [
        (name, options) for name, options in choices if len(options) > 1
    ]
    combos = list(itertools.product(*(c[1] for c in choices)))
    cover = space.cover
    child_segments: list[list[np.ndarray]] = [[] for _ in combos]
    column_iters = [
        _iter_chunk_columns(dataset, name) for name, _ in split_axes
    ]
    for i in range(cover.n_chunks):
        parent_bits = cover.segment(i)
        halves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for (name, options), columns in zip(split_axes, column_iters):
            column = next(columns)
            halves[name] = (
                np.packbits(options[0].cover(column)),
                np.packbits(options[1].cover(column)),
            )
        for child, combo in enumerate(combos):
            bits = parent_bits
            for (name, options), interval in zip(choices, combo):
                if len(options) > 1:
                    left, right = halves[name]
                    bits = bits & (
                        left if interval is options[0] else right
                    )
            child_segments[child].append(bits)

    if batch_counts and backend is not None:
        backend.batch_calls += 1
        backend.batched_candidates += len(combos)

    children: list[Space] = []
    for combo, segments in zip(combos, child_segments):
        intervals = {name: iv for (name, _), iv in zip(choices, combo)}
        child_cover = Cover(segments, cover.chunk_sizes)
        if backend is not None:
            counts = backend.cover_group_counts(child_cover)
        else:
            counts = dataset.group_counts(child_cover.to_dense())
        children.append(
            Space(intervals, child_cover, counts, space.ranges)
        )
    return children


def are_contiguous(a: Space, b: Space) -> bool:
    """True when the boxes differ on exactly one axis, where they touch.

    This is the merge precondition of Algorithm 1 lines 27-29: only
    contiguous spaces may be combined.
    """
    if a.attributes != b.attributes:
        return False
    differing: list[str] = []
    for name in a.attributes:
        if a.intervals[name] != b.intervals[name]:
            differing.append(name)
    if len(differing) != 1:
        return False
    return a.intervals[differing[0]].is_adjacent_to(b.intervals[differing[0]])


def merged_space(a: Space, b: Space) -> Space:
    """Union of two contiguous spaces (counts and covers are additive
    because median splits produce disjoint boxes)."""
    if not are_contiguous(a, b):
        raise ValueError("spaces are not contiguous")
    intervals = dict(a.intervals)
    for name in a.attributes:
        if a.intervals[name] != b.intervals[name]:
            intervals[name] = a.intervals[name].merge_with(b.intervals[name])
    return Space(
        intervals,
        a.cover | b.cover,
        a.counts + b.counts,
        a.ranges,
    )
