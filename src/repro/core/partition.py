"""Spaces (axis-aligned boxes) and median partitioning for SDAD-CS.

SDAD-CS explores the joint range of a set of continuous attributes by
recursively splitting each attribute at its median *within the current
region* (``partition(ca)``, Algorithm 1 line 4) and forming all ``2^|ca|``
combinations of the halves (``find_combs(p)``, line 5).  After the search,
contiguous similar spaces are merged bottom-up, smallest hyper-volume first
(lines 26-29).

A :class:`Space` is the box plus its boolean coverage mask over the original
dataset (the mask already includes any categorical context items), so
counting per-group membership in a space is a single ``bincount``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..dataset.table import Dataset
from .items import Interval, Itemset, NumericItem

__all__ = [
    "AttributeRange",
    "Space",
    "full_space",
    "partition_median",
    "find_combinations",
    "are_contiguous",
    "merged_space",
]


@dataclass(frozen=True)
class AttributeRange:
    """Observed [min, max] range of a continuous attribute.

    Used to normalise interval widths so hyper-volumes of boxes over
    different attributes are comparable (the merge step sorts by volume).
    """

    attribute: str
    lo: float
    hi: float

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def normalised_width(self, interval: Interval) -> float:
        """Width of ``interval`` clipped to this range, as a fraction."""
        if self.width <= 0:
            return 1.0
        lo = max(interval.lo, self.lo)
        hi = min(interval.hi, self.hi)
        return max(0.0, hi - lo) / self.width

    @staticmethod
    def of(dataset: Dataset, attribute: str) -> "AttributeRange":
        values = dataset.column(attribute)
        finite = values[~np.isnan(values)] if values.size else values
        if finite.size == 0:
            return AttributeRange(attribute, 0.0, 0.0)
        return AttributeRange(
            attribute, float(finite.min()), float(finite.max())
        )


class Space:
    """An axis-aligned box over continuous attributes with its coverage.

    Parameters
    ----------
    intervals:
        One :class:`Interval` per continuous attribute of the box.
    mask:
        Boolean coverage over the *original* dataset rows.  It must already
        include the categorical context (the itemset ``c`` that SDAD-CS was
        called with), so per-group counting needs no further filtering.
    counts:
        Per-group row counts inside the mask.
    ranges:
        Full attribute ranges, for hyper-volume normalisation.
    """

    __slots__ = ("intervals", "mask", "counts", "_ranges", "_volume")

    def __init__(
        self,
        intervals: Mapping[str, Interval],
        mask: np.ndarray,
        counts: np.ndarray,
        ranges: Mapping[str, AttributeRange],
    ) -> None:
        self.intervals: dict[str, Interval] = dict(
            sorted(intervals.items())
        )
        self.mask = mask
        self.counts = np.asarray(counts, dtype=np.int64)
        self._ranges = dict(ranges)
        self._volume: float | None = None

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self.intervals)

    @property
    def total_count(self) -> int:
        return int(self.counts.sum())

    @property
    def hypervolume(self) -> float:
        """Normalised n-volume of the box (Section 4.1: rectangles,
        cuboids, hyper-cubes)."""
        if self._volume is None:
            volume = 1.0
            for name, interval in self.intervals.items():
                rng = self._ranges.get(name)
                volume *= rng.normalised_width(interval) if rng else 1.0
            self._volume = volume
        return self._volume

    @property
    def ranges(self) -> dict[str, AttributeRange]:
        return dict(self._ranges)

    def numeric_items(self) -> tuple[NumericItem, ...]:
        return tuple(
            NumericItem(name, interval)
            for name, interval in self.intervals.items()
        )

    def itemset_with(self, categorical: Itemset) -> Itemset:
        """Full itemset: the categorical context plus this box's items."""
        itemset = categorical
        for item in self.numeric_items():
            itemset = itemset.with_item(item)
        return itemset

    def key(self) -> tuple:
        """Hashable identity of the box (used by the prune lookup table)."""
        return tuple(
            (name, iv.lo, iv.hi, iv.lo_closed, iv.hi_closed)
            for name, iv in self.intervals.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        box = ", ".join(f"{n}: {iv}" for n, iv in self.intervals.items())
        return f"Space({box}; n={self.total_count})"


def full_space(
    dataset: Dataset,
    attributes: Sequence[str],
    context_mask: np.ndarray,
    backend=None,
    *,
    ranges: Mapping[str, AttributeRange] | None = None,
) -> Space:
    """The level-0 space: each attribute's full observed range.

    The root interval is closed on both sides so the attribute minimum is
    covered; all descendant left-open splits inherit correct closure.
    ``backend`` optionally routes the group counting through a
    :class:`repro.counting.CountingBackend`.  ``ranges`` may supply
    precomputed :class:`AttributeRange` objects (they are a whole-column
    property, so callers running many contexts over the same dataset can
    share one cache); missing attributes are computed here.
    """
    intervals: dict[str, Interval] = {}
    used: dict[str, AttributeRange] = {}
    for name in attributes:
        rng = ranges.get(name) if ranges is not None else None
        if rng is None:
            rng = AttributeRange.of(dataset, name)
        used[name] = rng
        intervals[name] = Interval(rng.lo, rng.hi, True, True)
    ranges = used
    if backend is not None:
        counts = backend.mask_group_counts(context_mask)
    else:
        counts = dataset.group_counts(context_mask)
    return Space(intervals, context_mask, counts, ranges)


def partition_median(
    dataset: Dataset,
    space: Space,
    attribute: str,
    statistic: str = "median",
    *,
    fast: bool = False,
) -> tuple[Interval, Interval] | None:
    """Split one attribute's interval at the median (or mean) of the rows
    in ``space``.

    Returns ``None`` when the attribute cannot be split (no rows, or all
    values inside the space are identical — the "number of unique values far
    less than data points" caveat from Section 4.1).

    ``fast=True`` (the batch evaluation engine) fetches the minimum,
    maximum, and both middle order statistics from a single introselect
    pass instead of three separate reductions; an even-length median is
    the mean of the two partitioned middles either way, so the split
    point is bit-identical.
    """
    values = dataset.column(attribute)[space.mask]
    values = values[~np.isnan(values)]  # missing rows join no half
    if values.size == 0:
        return None
    interval = space.intervals[attribute]
    if fast and statistic == "median":
        n = values.size
        mid = n >> 1
        part = np.partition(values, sorted({0, max(mid - 1, 0), mid, n - 1}))
        vmin = float(part[0])
        vmax = float(part[-1])
        if vmin == vmax:
            return None
        if n & 1:
            median = float(part[mid])
        else:
            median = float((part[mid - 1] + part[mid]) / 2.0)
        if median >= vmax:
            distinct = np.unique(values)
            median = float(distinct[-2])
        left = Interval(interval.lo, median, interval.lo_closed, True)
        right = Interval(median, interval.hi, False, interval.hi_closed)
        return left, right
    vmin = float(values.min())
    vmax = float(values.max())
    if vmin == vmax:
        return None
    if statistic == "mean":
        # the mean of a non-constant sample is strictly inside
        # (vmin, vmax), so no tie fallback is ever needed
        median = float(values.mean())
    elif statistic == "median":
        median = float(np.median(values))
    else:
        raise ValueError("statistic must be 'median' or 'mean'")
    if median >= vmax:
        # Heavy ties at the top (the paper's "unique values far less than
        # data points" caveat): fall back to the largest distinct value
        # below the maximum so the right half stays non-empty.  Ties at
        # the bottom need no special case — a degenerate left interval
        # [min, min] is a legitimate half (e.g. the zero spike of a
        # zero-inflated frequency column).
        distinct = np.unique(values)
        median = float(distinct[-2])
    left = Interval(interval.lo, median, interval.lo_closed, True)
    right = Interval(median, interval.hi, False, interval.hi_closed)
    return left, right


def find_combinations(
    dataset: Dataset,
    space: Space,
    splits: Mapping[str, tuple[Interval, Interval]],
    backend=None,
    *,
    batch_counts: bool = False,
) -> list[Space]:
    """All combinations of the per-attribute halves (``find_combs``).

    Attributes without a split keep their current interval.  With ``k``
    split attributes this yields ``2^k`` child spaces; their masks partition
    the parent's mask.  ``backend`` optionally routes the per-space group
    counting through a :class:`repro.counting.CountingBackend`.

    ``batch_counts=True`` (the batch evaluation engine, DESIGN.md §12)
    computes each half's row cover once and reuses it across every child
    that includes it, instead of re-deriving the cover per child — with
    ``k`` split attributes that is ``2k`` interval covers instead of
    ``k * 2^k``.  The child masks and counts are the same arrays either
    way.
    """
    choices: list[tuple[str, tuple[Interval, ...]]] = []
    for name in space.attributes:
        if name in splits:
            choices.append((name, splits[name]))
        else:
            choices.append((name, (space.intervals[name],)))

    if batch_counts and backend is not None:
        return _find_combinations_batched(dataset, space, choices, backend)

    count_of = (
        backend.mask_group_counts
        if backend is not None
        else dataset.group_counts
    )
    children: list[Space] = []
    for combo in itertools.product(*(c[1] for c in choices)):
        intervals = {name: iv for (name, _), iv in zip(choices, combo)}
        mask = space.mask
        for (name, options), interval in zip(choices, combo):
            if len(options) > 1:  # only intersect the changed axes
                mask = mask & interval.cover(dataset.column(name))
        children.append(
            Space(intervals, mask, count_of(mask), space.ranges)
        )
    return children


def _find_combinations_batched(
    dataset: Dataset,
    space: Space,
    choices: Sequence[tuple[str, tuple[Interval, ...]]],
    backend,
) -> list[Space]:
    """``find_combs`` with each half's row cover computed exactly once.

    The child masks that come out of the shared covers are element-wise
    identical to the scalar loop's, and each child's group counting still
    goes through the backend (one ``mask_group_counts`` per child — with
    the bitmap backend that is a packed popcount, far cheaper than
    re-deriving covers), so ``count_calls`` advances exactly as the
    scalar driver's.
    """
    covers: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    n_children = 1
    for name, options in choices:
        if len(options) > 1:
            column = dataset.column(name)
            covers[name] = (options[0].cover(column), options[1].cover(column))
            n_children <<= 1
    backend.batch_calls += 1
    backend.batched_candidates += n_children

    children: list[Space] = []
    for combo in itertools.product(*(c[1] for c in choices)):
        intervals = {name: iv for (name, _), iv in zip(choices, combo)}
        mask = space.mask
        for (name, options), interval in zip(choices, combo):
            if len(options) > 1:
                left, right = covers[name]
                mask = mask & (left if interval is options[0] else right)
        children.append(
            Space(
                intervals, mask, backend.mask_group_counts(mask), space.ranges
            )
        )
    return children


def are_contiguous(a: Space, b: Space) -> bool:
    """True when the boxes differ on exactly one axis, where they touch.

    This is the merge precondition of Algorithm 1 lines 27-29: only
    contiguous spaces may be combined.
    """
    if a.attributes != b.attributes:
        return False
    differing: list[str] = []
    for name in a.attributes:
        if a.intervals[name] != b.intervals[name]:
            differing.append(name)
    if len(differing) != 1:
        return False
    return a.intervals[differing[0]].is_adjacent_to(b.intervals[differing[0]])


def merged_space(a: Space, b: Space) -> Space:
    """Union of two contiguous spaces (counts and masks are additive
    because median splits produce disjoint boxes)."""
    if not are_contiguous(a, b):
        raise ValueError("spaces are not contiguous")
    intervals = dict(a.intervals)
    for name in a.attributes:
        if a.intervals[name] != b.intervals[name]:
            intervals[name] = a.intervals[name].merge_with(b.intervals[name])
    return Space(
        intervals,
        a.mask | b.mask,
        a.counts + b.counts,
        a.ranges,
    )
