"""Optimistic estimates used to prune the SDAD-CS recursion and the
categorical search tree (paper Eq. 4-11 and the STUCCO chi-square bound).

An optimistic estimate ``oe(X)`` upper-bounds the interest measure of every
specialisation of ``X`` (Eq. 4); a node whose estimate falls below the
current top-k threshold cannot contribute and is not expanded.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .stats import (
    chi_square_counts_batch,
    chi_square_independence,
    contingency_from_counts,
)

__all__ = [
    "max_instances_child",
    "support_difference_estimate",
    "support_difference_estimate_batch",
    "chi_square_estimate",
    "chi_square_estimate_batch",
]


def max_instances_child(
    db_size: int,
    level: int,
    n_continuous: int,
    space_count: int,
) -> float:
    """Upper bound on the number of rows in any child space (Eq. 6).

    The paper's formula ``|DB| / (2^(level+1) * |ca|)`` assumes median
    splits distribute rows evenly across sibling spaces, which can be
    violated for strongly correlated attributes; we additionally clamp by
    ``ceil(|r| / 2)`` — a child is contained in one half of the current
    space along every split axis, and a median split puts at most half the
    region's rows (rounded up) in either half — to keep the estimate
    admissible (see DESIGN.md).

    Parameters
    ----------
    db_size:
        Rows in the dataset handed to the top-level SDAD-CS call.
    level:
        Current recursion level (1-based).
    n_continuous:
        Number of continuous attributes being partitioned.
    space_count:
        Rows in the current space ``r``.
    """
    if n_continuous < 1:
        raise ValueError("need at least one continuous attribute")
    paper_bound = db_size / (2 ** (level + 1) * n_continuous)
    strict_bound = math.ceil(space_count / 2)
    return min(max(paper_bound, strict_bound), space_count)


def support_difference_estimate(
    counts: Sequence[int] | np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
    db_size: int,
    level: int,
    n_continuous: int,
) -> float:
    """Optimistic estimate of the support difference in child spaces
    (Eq. 7-11).

    For every ordered pair of groups (i, j):

    * ``max_supp_i`` (Eq. 7) — a child can hold at most
      ``max_instances_child`` rows, and support is monotone under
      restriction, so the child's group-i support is bounded by
      ``min(max_instances_child / |g_i|, supp_i(r))``.
    * ``min_supp_j`` (Eq. 8-10) — if the child is full, at most
      ``other_instances_j = |DB| - count_j(r)`` of its rows can be
      non-(group-j-in-r), leaving at least
      ``max_instances_child - other_instances_j`` group-j rows.

    The estimate is the best achievable ``max_supp_i - min_supp_j``.

    This same bound serves the Surprising Measure: PR <= 1 always, so
    ``oe(PR x Diff) = oe(Diff)`` (Section 4.2).
    """
    counts = np.asarray(counts, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.float64)
    if counts.shape != sizes.shape:
        raise ValueError("counts and group_sizes must align")
    space_count = int(counts.sum())
    max_child = max_instances_child(
        db_size, level, n_continuous, space_count
    )

    supports = np.divide(
        counts, sizes, out=np.zeros_like(counts), where=sizes > 0
    )
    max_supp = np.minimum(
        np.divide(
            max_child, sizes, out=np.ones_like(sizes), where=sizes > 0
        ),
        supports,
    )
    other_instances = db_size - counts  # Eq. 8
    min_instances = max_child - other_instances  # Eq. 9
    min_supp = np.maximum(
        0.0,
        np.divide(
            min_instances,
            sizes,
            out=np.zeros_like(sizes),
            where=sizes > 0,
        ),
    )  # Eq. 10

    best = 0.0
    for i in range(len(counts)):
        for j in range(len(counts)):
            if i != j:
                best = max(best, float(max_supp[i] - min_supp[j]))  # Eq. 11
    return best


def support_difference_estimate_batch(
    counts: np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
    db_size: int,
    level: int,
    n_continuous: int,
) -> np.ndarray:
    """Vectorized Eq. 7-11 over an ``(N, G)`` counts matrix.

    Element ``i`` is bit-identical to ``support_difference_estimate(
    counts[i], ...)`` — the same IEEE-754 op sequence runs per row, and
    the pairwise max is over identical doubles.
    """
    counts = np.asarray(counts, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.float64)
    if counts.ndim != 2 or counts.shape[1] != sizes.shape[0]:
        raise ValueError("counts and group_sizes must align")
    n, g = counts.shape
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    space_count = counts.sum(axis=1)
    paper_bound = db_size / (2 ** (level + 1) * n_continuous)
    max_child = np.minimum(
        np.maximum(paper_bound, np.ceil(space_count / 2.0)), space_count
    )
    size_pos = sizes > 0
    supports = np.divide(
        counts, sizes[None, :], out=np.zeros_like(counts),
        where=size_pos[None, :],
    )
    max_supp = np.minimum(
        np.divide(
            max_child[:, None], sizes[None, :],
            out=np.ones((n, g), dtype=np.float64),
            where=size_pos[None, :],
        ),
        supports,
    )
    other_instances = db_size - counts  # Eq. 8
    min_instances = max_child[:, None] - other_instances  # Eq. 9
    min_supp = np.maximum(
        0.0,
        np.divide(
            min_instances, sizes[None, :],
            out=np.zeros_like(counts), where=size_pos[None, :],
        ),
    )  # Eq. 10
    diffs = max_supp[:, :, None] - min_supp[:, None, :]  # Eq. 11
    idx = np.arange(g)
    diffs[:, idx, idx] = -math.inf
    return np.maximum(diffs.reshape(n, -1).max(axis=1), 0.0)


def chi_square_estimate(
    counts: Sequence[int] | np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
) -> float:
    """Upper bound on the chi-square statistic of any specialisation.

    STUCCO's bound: a specialisation covers a subset of the current rows,
    and the statistic is maximised when the surviving rows all come from a
    single group.  We evaluate the statistic for each "keep only group g"
    scenario and return the maximum.
    """
    counts = np.asarray(counts, dtype=np.int64)
    sizes = np.asarray(group_sizes, dtype=np.int64)
    best = 0.0
    for keep in range(len(counts)):
        scenario = np.zeros_like(counts)
        scenario[keep] = counts[keep]
        if scenario[keep] == 0:
            continue
        table = contingency_from_counts(scenario, sizes)
        best = max(best, chi_square_independence(table).statistic)
    return best


def chi_square_estimate_batch(
    counts: np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """STUCCO optimistic chi-square bound over an ``(N, G)`` counts matrix.

    Bit-identical per row to :func:`chi_square_estimate`: each
    "keep only group g" scenario is scored for the whole batch with
    :func:`~repro.core.stats.chi_square_counts_batch` (itself exact
    against the scalar test), and a zero scenario count contributes a
    zero statistic — the same as the scalar path's ``continue`` under the
    ``best = max(0.0, ...)`` fold.
    """
    counts = np.asarray(counts, dtype=np.int64)
    sizes = np.asarray(group_sizes, dtype=np.int64)
    if counts.ndim != 2 or counts.shape[1] != sizes.shape[0]:
        raise ValueError("counts and group_sizes must align")
    n, g = counts.shape
    best = np.zeros(n, dtype=np.float64)
    if n == 0:
        return best
    scenario = np.zeros_like(counts)
    for keep in range(g):
        if keep:
            scenario[:, keep - 1] = 0
        scenario[:, keep] = counts[:, keep]
        stat, _, _ = chi_square_counts_batch(scenario, sizes)
        np.maximum(best, stat, out=best)
    return best
