"""Items, intervals, and itemsets over mixed data (paper Section 3).

An *item* is either a value of a categorical attribute (``occupation =
Prof-specialty``) or a range of a continuous attribute (``18 < Age <= 26``).
An *itemset* combines at most one item per attribute; for continuous
attributes the item is an :class:`Interval` and the conjunction of numeric
items describes an axis-aligned box ("space" in the paper's terminology).

Numeric intervals follow the paper's rendering convention: left-open,
right-closed ``(lo, hi]``, except that an interval may be explicitly closed
on the left to include an attribute's minimum value.  Infinite endpoints are
allowed (Cortana-style bins like ``(-inf, 39]``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

import numpy as np

from ..dataset.table import Dataset

__all__ = [
    "Interval",
    "CategoricalItem",
    "NumericItem",
    "Item",
    "Itemset",
]


@dataclass(frozen=True)
class Interval:
    """A numeric interval with explicit endpoint closure.

    ``lo``/``hi`` may be ``-inf``/``+inf``.  Degenerate intervals
    (``lo == hi``) are allowed only when both endpoints are closed.
    """

    lo: float
    hi: float
    lo_closed: bool = False
    hi_closed: bool = True

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints cannot be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")
        if self.lo == self.hi and not (self.lo_closed and self.hi_closed):
            raise ValueError("degenerate interval must be closed on both ends")

    # -- geometry ------------------------------------------------------

    @property
    def width(self) -> float:
        """Length of the interval (may be ``inf``)."""
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        above = value >= self.lo if self.lo_closed else value > self.lo
        below = value <= self.hi if self.hi_closed else value < self.hi
        return above and below

    def cover(self, values: np.ndarray) -> np.ndarray:
        """Vectorised membership test."""
        above = values >= self.lo if self.lo_closed else values > self.lo
        below = values <= self.hi if self.hi_closed else values < self.hi
        return above & below

    def is_adjacent_to(self, other: "Interval") -> bool:
        """True if the two intervals share exactly one boundary point.

        Adjacency is what makes two spaces mergeable along an axis
        (the bottom-up merge step of SDAD-CS requires contiguity).
        """
        if self.hi == other.lo:
            return self.hi_closed != other.lo_closed or self.hi_closed is False
        if other.hi == self.lo:
            return other.hi_closed != self.lo_closed or other.hi_closed is False
        return False

    def merge_with(self, other: "Interval") -> "Interval":
        """Union of two adjacent intervals."""
        if not self.is_adjacent_to(other):
            raise ValueError(f"cannot merge non-adjacent {self} and {other}")
        first, second = (self, other) if self.lo <= other.lo else (other, self)
        return Interval(
            first.lo, second.hi, first.lo_closed, second.hi_closed
        )

    def contains_interval(self, other: "Interval") -> bool:
        """True when every point of ``other`` lies in ``self``."""
        lo_ok = self.lo < other.lo or (
            self.lo == other.lo and (self.lo_closed or not other.lo_closed)
        )
        hi_ok = self.hi > other.hi or (
            self.hi == other.hi and (self.hi_closed or not other.hi_closed)
        )
        return lo_ok and hi_ok

    def overlaps(self, other: "Interval") -> bool:
        """True if the intervals share at least one point."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo < hi:
            return True
        if lo > hi:
            return False
        # Touching endpoints: shared point only if both sides include it.
        left_in = (
            (self.lo_closed if lo == self.lo else True)
            and (self.hi_closed if lo == self.hi else True)
        )
        right_in = (
            (other.lo_closed if lo == other.lo else True)
            and (other.hi_closed if lo == other.hi else True)
        )
        return left_in and right_in

    def __str__(self) -> str:
        left = "[" if self.lo_closed else "("
        right = "]" if self.hi_closed else ")"
        lo = "-inf" if math.isinf(self.lo) and self.lo < 0 else f"{self.lo:g}"
        hi = "inf" if math.isinf(self.hi) and self.hi > 0 else f"{self.hi:g}"
        return f"{left}{lo}, {hi}{right}"


@dataclass(frozen=True)
class CategoricalItem:
    """``attribute = value`` for a categorical attribute."""

    attribute: str
    value: str

    def cover(self, dataset: Dataset) -> np.ndarray:
        attr = dataset.attribute(self.attribute)
        return dataset.column(self.attribute) == attr.code_of(self.value)

    def __str__(self) -> str:
        return f"{self.attribute} = {self.value}"


@dataclass(frozen=True)
class NumericItem:
    """``attribute in interval`` for a continuous attribute."""

    attribute: str
    interval: Interval

    def cover(self, dataset: Dataset) -> np.ndarray:
        return self.interval.cover(dataset.column(self.attribute))

    def __str__(self) -> str:
        iv = self.interval
        left = "<=" if iv.lo_closed else "<"
        right = "<=" if iv.hi_closed else "<"
        lo = "-inf" if math.isinf(iv.lo) else f"{iv.lo:g}"
        hi = "inf" if math.isinf(iv.hi) else f"{iv.hi:g}"
        return f"{lo} {left} {self.attribute} {right} {hi}"


Item = Union[CategoricalItem, NumericItem]


class Itemset:
    """An immutable set of items, at most one per attribute.

    Itemsets are hashable and ordered canonically by attribute name so that
    equal itemsets compare and hash equal regardless of construction order.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[Item] = ()) -> None:
        by_attr: dict[str, Item] = {}
        for item in items:
            if item.attribute in by_attr:
                raise ValueError(
                    f"duplicate attribute {item.attribute!r} in itemset"
                )
            by_attr[item.attribute] = item
        self._items: tuple[Item, ...] = tuple(
            by_attr[name] for name in sorted(by_attr)
        )
        self._hash = hash(self._items)

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    # -- pickling -------------------------------------------------------
    #
    # The cached hash must NOT cross process boundaries: str hashing is
    # salted per interpreter (PYTHONHASHSEED), so a hash computed in the
    # writing process disagrees with hashes of equal itemsets built in
    # the reading one — dict/set lookups would silently miss (observed
    # as checkpoint resumes losing redundancy prunes).  Recompute it.

    def __getstate__(self) -> tuple:
        return self._items

    def __setstate__(self, state: tuple) -> None:
        self._items = state
        self._hash = hash(state)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Itemset):
            return NotImplemented
        return self._items == other._items

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def items(self) -> tuple[Item, ...]:
        return self._items

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(item.attribute for item in self._items)

    def item_for(self, attribute: str) -> Item | None:
        for item in self._items:
            if item.attribute == attribute:
                return item
        return None

    # -- set algebra ----------------------------------------------------

    def with_item(self, item: Item) -> "Itemset":
        """New itemset with one more item (attribute must be fresh)."""
        return Itemset(self._items + (item,))

    def without_attribute(self, attribute: str) -> "Itemset":
        return Itemset(i for i in self._items if i.attribute != attribute)

    def union(self, other: "Itemset") -> "Itemset":
        return Itemset(self._items + other._items)

    def is_subset_of(self, other: "Itemset") -> bool:
        mine = set(self._items)
        theirs = set(other._items)
        return mine <= theirs

    def is_proper_subset_of(self, other: "Itemset") -> bool:
        return len(self) < len(other) and self.is_subset_of(other)

    def region_subsumes(self, other: "Itemset") -> bool:
        """True when ``other`` describes a region inside this itemset's.

        Every item of ``self`` must be matched in ``other``: categorical
        items by equality, numeric items by interval containment (the
        other's interval lies within ours).  Used by pure-space pruning:
        any itemset whose region sits inside a PR = 1 region can only be a
        redundant contrast (Section 4.3).
        """
        for item in self._items:
            theirs = other.item_for(item.attribute)
            if theirs is None:
                return False
            if isinstance(item, CategoricalItem):
                if item != theirs:
                    return False
            else:
                if not isinstance(theirs, NumericItem):
                    return False
                if not item.interval.contains_interval(theirs.interval):
                    return False
        return True

    def proper_subsets(self) -> Iterator["Itemset"]:
        """All non-empty proper subsets (used by productivity checks)."""
        n = len(self._items)
        for bits in range(1, (1 << n) - 1):
            yield Itemset(
                self._items[i] for i in range(n) if bits & (1 << i)
            )

    def partitions(self) -> Iterator[tuple["Itemset", "Itemset"]]:
        """All binary partitions ``(a, c\\a)`` with both sides non-empty.

        Each unordered partition is yielded once (the side containing the
        first item is reported first).
        """
        n = len(self._items)
        for bits in range(1, 1 << (n - 1)):
            left = Itemset(
                self._items[i] for i in range(n) if bits & (1 << i)
            )
            right = Itemset(
                self._items[i] for i in range(n) if not bits & (1 << i)
            )
            yield right, left  # right always contains item 0

    # -- evaluation ------------------------------------------------------

    def cover(self, dataset: Dataset) -> np.ndarray:
        """Boolean coverage mask of this itemset over a dataset."""
        mask = np.ones(dataset.n_rows, dtype=bool)
        for item in self._items:
            mask &= item.cover(dataset)
        return mask

    def __str__(self) -> str:
        if not self._items:
            return "{}"
        return " and ".join(str(item) for item in self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Itemset({self})"
