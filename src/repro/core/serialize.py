"""JSON-friendly serialization of itemsets and contrast patterns.

Production pipelines persist mined patterns (to re-evaluate on tomorrow's
data, to diff against yesterday's run, to feed a dashboard).  This module
provides a stable dict schema plus round-trip loaders::

    payload = pattern_to_dict(pattern)
    json.dumps(payload)
    ...
    restored = pattern_from_dict(payload)

Durable artifacts (the pattern store, exported result files) wrap the
per-pattern dicts in a *versioned envelope*: :func:`serialization_header`
stamps the payload with the schema version this build writes plus the
library version that wrote it, and :func:`check_header` refuses to load a
payload written under a different schema version with a clear error
instead of an obscure ``KeyError`` deep in the loaders.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

from .contrast import ContrastPattern
from .items import CategoricalItem, Interval, Itemset, NumericItem

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "serialization_header",
    "check_header",
    "item_to_dict",
    "item_from_dict",
    "itemset_to_dict",
    "itemset_from_dict",
    "pattern_to_dict",
    "pattern_from_dict",
    "patterns_to_dicts",
    "patterns_from_dicts",
    "patterns_to_payload",
    "patterns_from_payload",
]

SCHEMA_VERSION = 1
"""Version of the pattern dict schema this build reads and writes.
Bump on any change to the dict layout that older loaders cannot read."""

_FORMAT = "repro-patterns"


class SerializationError(ValueError):
    """A serialized payload cannot be loaded by this build."""


def _library_version() -> str:
    # Imported lazily: repro/__init__ defines __version__ after its own
    # imports, so a module-level import here could observe a half-built
    # package during interpreter start-up.
    from .. import __version__

    return __version__


def serialization_header() -> dict[str, Any]:
    """Envelope fields identifying the writer of a durable payload."""
    return {
        "format": _FORMAT,
        "schema_version": SCHEMA_VERSION,
        "library_version": _library_version(),
    }


def check_header(payload: Mapping[str, Any], what: str = "payload") -> None:
    """Validate a payload's envelope; raise :class:`SerializationError`.

    The schema version must match exactly.  The library version is
    informational only (patch releases keep the schema stable) but is
    echoed in the error message so a stale artifact names its writer.
    """
    if not isinstance(payload, Mapping):
        raise SerializationError(
            f"{what} is not a mapping (got {type(payload).__name__})"
        )
    fmt = payload.get("format")
    if fmt != _FORMAT:
        raise SerializationError(
            f"{what} has no repro serialization header "
            f"(format={fmt!r}, expected {_FORMAT!r})"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        writer = payload.get("library_version", "unknown")
        raise SerializationError(
            f"{what} uses pattern schema version {version!r} "
            f"(written by repro {writer}); this build "
            f"(repro {_library_version()}) reads version {SCHEMA_VERSION}"
        )


def item_to_dict(item) -> dict[str, Any]:
    if isinstance(item, CategoricalItem):
        return {
            "kind": "categorical",
            "attribute": item.attribute,
            "value": item.value,
        }
    if isinstance(item, NumericItem):
        iv = item.interval
        return {
            "kind": "numeric",
            "attribute": item.attribute,
            "lo": None if math.isinf(iv.lo) else iv.lo,
            "hi": None if math.isinf(iv.hi) else iv.hi,
            "lo_closed": iv.lo_closed,
            "hi_closed": iv.hi_closed,
        }
    raise TypeError(f"unknown item type: {type(item).__name__}")


def item_from_dict(payload: Mapping[str, Any]):
    kind = payload.get("kind")
    if kind == "categorical":
        return CategoricalItem(payload["attribute"], payload["value"])
    if kind == "numeric":
        lo = payload.get("lo")
        hi = payload.get("hi")
        return NumericItem(
            payload["attribute"],
            Interval(
                -math.inf if lo is None else float(lo),
                math.inf if hi is None else float(hi),
                bool(payload.get("lo_closed", False)),
                bool(payload.get("hi_closed", True)),
            ),
        )
    raise ValueError(f"unknown item kind: {kind!r}")


def itemset_to_dict(itemset: Itemset) -> dict[str, Any]:
    return {"items": [item_to_dict(item) for item in itemset]}


def itemset_from_dict(payload: Mapping[str, Any]) -> Itemset:
    return Itemset(
        item_from_dict(item) for item in payload.get("items", [])
    )


def pattern_to_dict(pattern: ContrastPattern) -> dict[str, Any]:
    """Serialise a pattern with its evaluation statistics.

    Derived metrics are included for consumers (dashboards) but ignored
    on load — counts are the source of truth.
    """
    return {
        "itemset": itemset_to_dict(pattern.itemset),
        "counts": list(pattern.counts),
        "group_sizes": list(pattern.group_sizes),
        "group_labels": list(pattern.group_labels),
        "level": pattern.level,
        "hypervolume": pattern.hypervolume,
        "derived": {
            "supports": list(pattern.supports),
            "support_difference": pattern.support_difference,
            "purity_ratio": pattern.purity_ratio,
            "surprising_measure": pattern.surprising_measure,
            "p_value": pattern.significance_p_value,
            "dominant_group": pattern.dominant_group,
        },
    }


def pattern_from_dict(payload: Mapping[str, Any]) -> ContrastPattern:
    return ContrastPattern(
        itemset=itemset_from_dict(payload["itemset"]),
        counts=tuple(int(c) for c in payload["counts"]),
        group_sizes=tuple(int(s) for s in payload["group_sizes"]),
        group_labels=tuple(payload["group_labels"]),
        level=int(payload.get("level", 1)),
        hypervolume=float(payload.get("hypervolume", 1.0)),
    )


def patterns_to_dicts(
    patterns: Sequence[ContrastPattern],
) -> list[dict[str, Any]]:
    return [pattern_to_dict(p) for p in patterns]


def patterns_from_dicts(
    payloads: Sequence[Mapping[str, Any]],
) -> list[ContrastPattern]:
    return [pattern_from_dict(p) for p in payloads]


def patterns_to_payload(
    patterns: Sequence[ContrastPattern],
    interests: Mapping[Itemset, float] | None = None,
) -> dict[str, Any]:
    """Patterns (optionally with interest values) in a versioned envelope."""
    payload = serialization_header()
    records = []
    for pattern in patterns:
        record = pattern_to_dict(pattern)
        if interests is not None:
            record["interest"] = float(interests[pattern.itemset])
        records.append(record)
    payload["patterns"] = records
    return payload


def patterns_from_payload(
    payload: Mapping[str, Any], what: str = "payload"
) -> tuple[list[ContrastPattern], dict[Itemset, float]]:
    """Load a versioned envelope; returns ``(patterns, interests)``.

    ``interests`` maps each itemset to its stored interest value and is
    empty when the payload carried none.
    """
    check_header(payload, what)
    records = payload.get("patterns")
    if not isinstance(records, Sequence) or isinstance(records, (str, bytes)):
        raise SerializationError(f"{what} has no pattern list")
    patterns: list[ContrastPattern] = []
    interests: dict[Itemset, float] = {}
    for record in records:
        pattern = pattern_from_dict(record)
        patterns.append(pattern)
        if "interest" in record:
            interests[pattern.itemset] = float(record["interest"])
    return patterns, interests
