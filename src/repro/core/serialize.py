"""JSON-friendly serialization of itemsets and contrast patterns.

Production pipelines persist mined patterns (to re-evaluate on tomorrow's
data, to diff against yesterday's run, to feed a dashboard).  This module
provides a stable dict schema plus round-trip loaders::

    payload = pattern_to_dict(pattern)
    json.dumps(payload)
    ...
    restored = pattern_from_dict(payload)
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

from .contrast import ContrastPattern
from .items import CategoricalItem, Interval, Itemset, NumericItem

__all__ = [
    "item_to_dict",
    "item_from_dict",
    "itemset_to_dict",
    "itemset_from_dict",
    "pattern_to_dict",
    "pattern_from_dict",
    "patterns_to_dicts",
    "patterns_from_dicts",
]


def item_to_dict(item) -> dict[str, Any]:
    if isinstance(item, CategoricalItem):
        return {
            "kind": "categorical",
            "attribute": item.attribute,
            "value": item.value,
        }
    if isinstance(item, NumericItem):
        iv = item.interval
        return {
            "kind": "numeric",
            "attribute": item.attribute,
            "lo": None if math.isinf(iv.lo) else iv.lo,
            "hi": None if math.isinf(iv.hi) else iv.hi,
            "lo_closed": iv.lo_closed,
            "hi_closed": iv.hi_closed,
        }
    raise TypeError(f"unknown item type: {type(item).__name__}")


def item_from_dict(payload: Mapping[str, Any]):
    kind = payload.get("kind")
    if kind == "categorical":
        return CategoricalItem(payload["attribute"], payload["value"])
    if kind == "numeric":
        lo = payload.get("lo")
        hi = payload.get("hi")
        return NumericItem(
            payload["attribute"],
            Interval(
                -math.inf if lo is None else float(lo),
                math.inf if hi is None else float(hi),
                bool(payload.get("lo_closed", False)),
                bool(payload.get("hi_closed", True)),
            ),
        )
    raise ValueError(f"unknown item kind: {kind!r}")


def itemset_to_dict(itemset: Itemset) -> dict[str, Any]:
    return {"items": [item_to_dict(item) for item in itemset]}


def itemset_from_dict(payload: Mapping[str, Any]) -> Itemset:
    return Itemset(
        item_from_dict(item) for item in payload.get("items", [])
    )


def pattern_to_dict(pattern: ContrastPattern) -> dict[str, Any]:
    """Serialise a pattern with its evaluation statistics.

    Derived metrics are included for consumers (dashboards) but ignored
    on load — counts are the source of truth.
    """
    return {
        "itemset": itemset_to_dict(pattern.itemset),
        "counts": list(pattern.counts),
        "group_sizes": list(pattern.group_sizes),
        "group_labels": list(pattern.group_labels),
        "level": pattern.level,
        "hypervolume": pattern.hypervolume,
        "derived": {
            "supports": list(pattern.supports),
            "support_difference": pattern.support_difference,
            "purity_ratio": pattern.purity_ratio,
            "surprising_measure": pattern.surprising_measure,
            "p_value": pattern.significance_p_value,
            "dominant_group": pattern.dominant_group,
        },
    }


def pattern_from_dict(payload: Mapping[str, Any]) -> ContrastPattern:
    return ContrastPattern(
        itemset=itemset_from_dict(payload["itemset"]),
        counts=tuple(int(c) for c in payload["counts"]),
        group_sizes=tuple(int(s) for s in payload["group_sizes"]),
        group_labels=tuple(payload["group_labels"]),
        level=int(payload.get("level", 1)),
        hypervolume=float(payload.get("hypervolume", 1.0)),
    )


def patterns_to_dicts(
    patterns: Sequence[ContrastPattern],
) -> list[dict[str, Any]]:
    return [pattern_to_dict(p) for p in patterns]


def patterns_from_dicts(
    payloads: Sequence[Mapping[str, Any]],
) -> list[ContrastPattern]:
    return [pattern_from_dict(p) for p in payloads]
