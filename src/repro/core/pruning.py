"""Pruning rules and the prune lookup table (paper Sections 3 and 4.3).

SDAD-CS prunes a space/itemset when:

1. *minimum deviation size* — no group's support exceeds ``delta``
   (a contrast needs a support difference over ``delta``, which is
   impossible when every support is at most ``delta``);
2. *expected count* — some expected contingency cell is below 5, where the
   chi-square approximation is unreliable;
3. *optimistic estimate* — the best interest value any specialisation could
   reach is below the current top-k threshold (Eq. 4-11), or the best
   chi-square any specialisation could reach is below the significance
   cut-off;
4. *statistical redundancy* — the itemset's support difference is within
   the CLT band of one of its subsets' differences (Eq. 14-16), so the
   specialisation explains nothing new;
5. *pure space* — PR = 1 (only one group present): adding further items
   can only produce redundant contrasts (the height/toddler example of
   Section 4.3).

Every rule is independently switchable through
:class:`~repro.core.miner.MinerConfig`, which is how the paper's SDAD-CS NP
("no pruning") comparison configuration is expressed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from .contrast import ContrastPattern
from .stats import (
    clt_difference_bound,
    clt_difference_bound_batch,
    difference_is_statistically_same,
    min_expected_count,
    min_expected_count_batch,
)

__all__ = [
    "PruneReason",
    "PruneDecision",
    "PruneTable",
    "minimum_deviation_prunes",
    "minimum_deviation_prunes_batch",
    "expected_count_prunes",
    "expected_count_prunes_batch",
    "redundant_against_subset",
    "redundant_against_subset_batch",
    "is_pure_space",
    "is_pure_space_batch",
]


class PruneReason(enum.Enum):
    """Why a space or itemset was pruned."""

    MIN_DEVIATION = "minimum deviation size"
    EXPECTED_COUNT = "expected count below 5"
    OPTIMISTIC_ESTIMATE = "optimistic estimate below threshold"
    REDUNDANT = "statistically redundant with a subset"
    PURE_SPACE = "pure space (PR = 1)"
    EMPTY = "no rows"


@dataclass(frozen=True)
class PruneDecision:
    """Result of checking a candidate against the pruning rules."""

    pruned: bool
    reason: PruneReason | None = None

    @staticmethod
    def keep() -> "PruneDecision":
        return PruneDecision(False, None)

    @staticmethod
    def drop(reason: PruneReason) -> "PruneDecision":
        return PruneDecision(True, reason)


@dataclass
class PruneTable:
    """Lookup table of pruned candidates (Algorithm 1 lines 7-9).

    The paper uses a hash map keyed by the itemset; any candidate found in
    the table — or any candidate containing a pruned sub-candidate, which
    callers check by probing subset keys — is skipped without evaluation.
    The table also doubles as the experiment's instrumentation: it records
    how many candidates were pruned for which reason.
    """

    _table: dict[Hashable, PruneReason] = field(default_factory=dict)
    checks: int = 0
    hits: int = 0

    def add(self, key: Hashable, reason: PruneReason) -> None:
        self._table[key] = reason

    def contains(self, key: Hashable) -> bool:
        self.checks += 1
        found = key in self._table
        if found:
            self.hits += 1
        return found

    def reason_for(self, key: Hashable) -> PruneReason | None:
        return self._table.get(key)

    def __len__(self) -> int:
        return len(self._table)

    def reason_counts(self) -> dict[PruneReason, int]:
        out: dict[PruneReason, int] = {}
        for reason in self._table.values():
            out[reason] = out.get(reason, 0) + 1
        return out

    def merge_from(self, other: "PruneTable") -> None:
        """Fold another table in (parallel driver merging worker tables).

        Worker tasks operate on disjoint candidate keys (one attribute
        combination per task), so the union is collision-free; probe
        counters are summed.
        """
        self._table.update(other._table)
        self.checks += other.checks
        self.hits += other.hits


def minimum_deviation_prunes(
    counts: Sequence[int] | np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
    delta: float,
) -> bool:
    """True if no group's support exceeds ``delta`` (prune rule 1)."""
    counts = np.asarray(counts, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.float64)
    supports = np.divide(
        counts, sizes, out=np.zeros_like(counts), where=sizes > 0
    )
    return bool(np.all(supports <= delta))


def expected_count_prunes(
    counts: Sequence[int] | np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
    minimum: float = 5.0,
) -> bool:
    """True if some expected contingency cell is below ``minimum``
    (prune rule 2)."""
    return min_expected_count(counts, group_sizes) < minimum


def redundant_against_subset(
    pattern: ContrastPattern,
    subset: ContrastPattern,
    alpha: float,
) -> bool:
    """CLT redundancy test against one subset pattern (Eq. 14-16).

    The comparison is made between the same two groups the subset's
    difference is computed on (its extreme-support pair), using the
    subset's supports for the variance estimate.  When the subset's
    supports are tied (e.g. the root region, where every group has support
    1), the pattern's own extreme pair is used instead — a tied subset
    carries no preferred direction.
    """
    hi = max(
        range(len(subset.supports)), key=subset.supports.__getitem__
    )
    lo = min(
        range(len(subset.supports)), key=subset.supports.__getitem__
    )
    if subset.supports[hi] == subset.supports[lo]:
        hi = max(
            range(len(pattern.supports)), key=pattern.supports.__getitem__
        )
        lo = min(
            range(len(pattern.supports)), key=pattern.supports.__getitem__
        )
        if hi == lo:
            lo = (hi + 1) % len(pattern.supports)
    diff_subset = subset.supports[hi] - subset.supports[lo]
    diff_current = pattern.supports[hi] - pattern.supports[lo]
    return difference_is_statistically_same(
        diff_current,
        diff_subset,
        subset.supports[hi],
        subset.supports[lo],
        subset.group_sizes[hi],
        subset.group_sizes[lo],
        alpha,
    )


def is_pure_space(
    counts: Sequence[int] | np.ndarray, min_count: int = 1
) -> bool:
    """True if only one group is present in the space (PR = 1, rule 5)."""
    counts = np.asarray(counts)
    nonzero = int(np.count_nonzero(counts))
    return nonzero == 1 and int(counts.sum()) >= min_count


# ----------------------------------------------------------------------
# Batch variants — one boolean per row of an (N, n_groups) counts matrix.
# Each is bit-identical to its scalar counterpart applied row by row
# (pinned by tests/test_batch_equivalence.py).
# ----------------------------------------------------------------------


def minimum_deviation_prunes_batch(
    counts: np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
    delta: float,
) -> np.ndarray:
    """Vectorized :func:`minimum_deviation_prunes` (prune rule 1)."""
    counts = np.asarray(counts, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.float64)
    supports = np.divide(
        counts, sizes[None, :], out=np.zeros_like(counts),
        where=(sizes > 0)[None, :],
    )
    return np.all(supports <= delta, axis=1)


def expected_count_prunes_batch(
    counts: np.ndarray,
    group_sizes: Sequence[int] | np.ndarray,
    minimum: float = 5.0,
) -> np.ndarray:
    """Vectorized :func:`expected_count_prunes` (prune rule 2)."""
    return min_expected_count_batch(counts, group_sizes) < minimum


def redundant_against_subset_batch(
    supports: np.ndarray,
    subset: ContrastPattern,
    alpha: float,
) -> np.ndarray:
    """CLT redundancy test of N patterns against one shared subset.

    ``supports`` holds each pattern's per-group support row (the exact
    values ``ContrastPattern.supports`` would expose).  The SDAD-CS space
    phase always compares every child space against the same parent
    region, so the subset's extreme pair, difference, and CLT band are
    computed once; only the tied-subset branch — where the scalar rule
    falls back to each pattern's own extreme pair — needs per-row
    gathers.
    """
    sup = np.asarray(supports, dtype=np.float64)
    n, g = sup.shape
    ss = subset.supports
    hi = max(range(len(ss)), key=ss.__getitem__)
    lo = min(range(len(ss)), key=ss.__getitem__)
    if ss[hi] != ss[lo]:
        diff_subset = ss[hi] - ss[lo]
        diff_current = sup[:, hi] - sup[:, lo]
        bound = clt_difference_bound(
            ss[hi], ss[lo],
            subset.group_sizes[hi], subset.group_sizes[lo], alpha,
        )
        return np.abs(diff_current - diff_subset) <= bound
    # Tied subset: per-pattern extreme pair (first argmax / first argmin,
    # matching Python's max()/min() over the support tuple).
    hi_i = np.argmax(sup, axis=1)
    lo_i = np.argmin(sup, axis=1)
    lo_i = np.where(hi_i == lo_i, (hi_i + 1) % g, lo_i)
    ss_arr = np.asarray(ss, dtype=np.float64)
    sn_arr = np.asarray(subset.group_sizes, dtype=np.float64)
    s_hi = ss_arr[hi_i]
    s_lo = ss_arr[lo_i]
    rows = np.arange(n)
    diff_current = sup[rows, hi_i] - sup[rows, lo_i]
    diff_subset = s_hi - s_lo
    bound = clt_difference_bound_batch(
        s_hi, s_lo, sn_arr[hi_i], sn_arr[lo_i], alpha
    )
    return np.abs(diff_current - diff_subset) <= bound


def is_pure_space_batch(
    counts: np.ndarray, min_count: int = 1
) -> np.ndarray:
    """Vectorized :func:`is_pure_space` (prune rule 5)."""
    counts = np.asarray(counts)
    nonzero = np.count_nonzero(counts, axis=1)
    return (nonzero == 1) & (counts.sum(axis=1) >= min_count)
