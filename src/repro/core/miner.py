"""High-level mining facade.

:class:`ContrastSetMiner` ties together the level-wise search, SDAD-CS, the
top-k list, and the meaningfulness post-filters; it is the public entry
point a downstream user calls::

    miner = ContrastSetMiner(MinerConfig(interest_measure="surprising"))
    result = miner.mine(dataset, groups=("Doctorate", "Bachelors"))
    for pattern in result.meaningful():
        print(pattern.describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..dataset.table import Dataset
from .config import MinerConfig
from .contrast import ContrastPattern
from .instrumentation import MiningStats, Stopwatch
from .meaningful import MeaningfulnessReport, classify_patterns
from .search import SearchEngine

__all__ = ["ContrastSetMiner", "MiningResult"]


@dataclass
class MiningResult:
    """Everything a mining run produced."""

    patterns: list[ContrastPattern]
    interests: dict
    stats: MiningStats
    config: MinerConfig
    dataset: Dataset

    def top(self, n: int | None = None) -> list[ContrastPattern]:
        """The best ``n`` patterns by the configured interest measure."""
        return self.patterns if n is None else self.patterns[:n]

    def interest_of(self, pattern: ContrastPattern) -> float:
        return self.interests[pattern.itemset]

    def meaningfulness(
        self, alpha: float | None = None
    ) -> MeaningfulnessReport:
        """Classify the result patterns (redundant / unproductive / not
        independently productive)."""
        alpha = self.config.alpha if alpha is None else alpha
        return classify_patterns(self.patterns, self.dataset, alpha)

    def meaningful(
        self, alpha: float | None = None
    ) -> list[ContrastPattern]:
        """Only the meaningful patterns (paper's headline output)."""
        return self.meaningfulness(alpha).meaningful_patterns()

    def __len__(self) -> int:
        return len(self.patterns)


class ContrastSetMiner:
    """Contrast-set miner for mixed data (SDAD-CS + meaningful filters)."""

    def __init__(self, config: MinerConfig | None = None) -> None:
        self.config = config or MinerConfig()

    def mine(
        self,
        dataset: Dataset,
        groups: Sequence[str] | None = None,
        attributes: Sequence[str] | None = None,
    ) -> MiningResult:
        """Mine contrast patterns between groups of a dataset.

        Parameters
        ----------
        dataset:
            The data.  If it has more than the groups of interest, pass
            ``groups`` to narrow it first.
        groups:
            Optional pair (or more) of group labels to contrast; defaults
            to all groups in the dataset.
        attributes:
            Optional subset of attributes to search over; defaults to all.
        """
        if groups is not None:
            dataset = dataset.select_groups(groups)
        if dataset.n_groups < 2:
            raise ValueError("contrast mining needs at least two groups")
        engine = SearchEngine(dataset, self.config, attributes)
        with Stopwatch(engine.stats):
            topk = engine.run()
        patterns = topk.patterns()
        return MiningResult(
            patterns=patterns,
            interests=topk.interests(),
            stats=engine.stats,
            config=self.config,
            dataset=dataset,
        )
