"""High-level mining facade.

:class:`ContrastSetMiner` ties together the level-wise search, SDAD-CS, the
top-k list, and the meaningfulness post-filters; it is the single public
entry point a downstream user calls::

    miner = ContrastSetMiner(MinerConfig(interest_measure="surprising"))
    result = miner.mine(dataset, groups=("Doctorate", "Bachelors"))
    for pattern in result.meaningful():
        print(pattern.describe())

Pass ``n_jobs > 1`` to the same call to run the level-parallel scheduler
(paper Section 6) instead of the serial engine — the result type is the
same either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # annotation-only imports (resume/fault-plan plumbing)
    import os

    from ..resilience.inject import FaultPlan
    from ..serve.store import PatternStore

from ..dataset.table import Dataset
from .config import MinerConfig
from .contrast import ContrastPattern
from .instrumentation import MiningStats, Stopwatch
from .items import Itemset
from .meaningful import MeaningfulnessReport, classify_patterns
from .search import SearchEngine

__all__ = ["ContrastSetMiner", "MiningResult", "MiningSummary"]


@dataclass(frozen=True)
class MiningSummary:
    """Compact, printable digest of a mining run."""

    n_patterns: int
    n_rows: int
    n_groups: int
    group_labels: tuple[str, ...]
    partitions_evaluated: int
    spaces_pruned: int
    elapsed_seconds: float
    counting_backend: str
    count_calls: int
    cache_hits: int
    cache_misses: int
    n_workers: int
    prune_rule_checks: dict[str, int] = field(default_factory=dict)
    """Per pipeline rule: candidates examined (serial and parallel runs
    report identical values for the same dataset and config)."""
    prune_rule_hits: dict[str, int] = field(default_factory=dict)
    """Per pipeline rule: candidates pruned."""
    prune_reasons: dict[str, int] = field(default_factory=dict)
    """Unique pruned keys per :class:`PruneReason` name."""
    n_task_retries: int = 0
    """Parallel tasks re-dispatched after a failed attempt."""
    n_task_timeouts: int = 0
    """Task attempts abandoned for exceeding the per-task budget."""
    n_worker_crashes: int = 0
    """Pool-breaking worker crashes survived during the run."""
    n_serial_fallbacks: int = 0
    """Tasks re-executed serially in the driver after exhausting retries."""
    n_tasks_failed: int = 0
    """Tasks that failed permanently (even the serial fallback)."""
    n_checkpoints: int = 0
    """Level-boundary checkpoints written during the run."""
    resumed_from_level: int = 0
    """Deepest completed level restored from a checkpoint (0 = fresh)."""
    batch_calls: int = 0
    """Batched counting sweeps (``group_counts_batch`` invocations plus
    fused SDAD-CS child-space counts)."""
    batched_candidates: int = 0
    """Candidates whose supports were counted through a batched sweep
    (each also bumps ``count_calls``, keeping totals comparable with the
    scalar driver)."""
    batch_fallbacks: int = 0
    """Batched candidates that fell back to a per-candidate scalar count
    (backend without a native batch path, or hybrid numeric itemsets)."""
    prune_rule_batched: dict[str, int] = field(default_factory=dict)
    """Per pipeline rule: checks that ran through the batch evaluator
    (the ``mode`` column of ``--explain-prunes``)."""


@dataclass
class MiningResult:
    """Everything a mining run produced."""

    patterns: list[ContrastPattern]
    interests: dict[Itemset, float]
    stats: MiningStats
    config: MinerConfig
    dataset: Dataset
    n_workers: int = 1
    run_id: str | None = None
    """Id the run was stored under when ``mine(..., store=)`` published
    it to a :class:`~repro.serve.PatternStore`; ``None`` otherwise."""

    def top(self, n: int | None = None) -> list[ContrastPattern]:
        """The best ``n`` patterns by the configured interest measure."""
        return self.patterns if n is None else self.patterns[:n]

    def interest_of(self, pattern: ContrastPattern) -> float:
        return self.interests[pattern.itemset]

    def summary(self) -> MiningSummary:
        """Stats and row counts of the run in one small dataclass."""
        return MiningSummary(
            n_patterns=len(self.patterns),
            n_rows=self.dataset.n_rows,
            n_groups=self.dataset.n_groups,
            group_labels=tuple(self.dataset.group_labels),
            partitions_evaluated=self.stats.partitions_evaluated,
            spaces_pruned=self.stats.spaces_pruned,
            elapsed_seconds=self.stats.elapsed_seconds,
            counting_backend=self.stats.counting_backend,
            count_calls=self.stats.count_calls,
            cache_hits=self.stats.cache_hits,
            cache_misses=self.stats.cache_misses,
            n_workers=self.n_workers,
            prune_rule_checks=dict(self.stats.prune_rule_checks),
            prune_rule_hits=dict(self.stats.prune_rule_hits),
            prune_reasons=dict(self.stats.prune_reasons),
            n_task_retries=self.stats.tasks_retried,
            n_task_timeouts=self.stats.task_timeouts,
            n_worker_crashes=self.stats.worker_crashes,
            n_serial_fallbacks=self.stats.serial_fallbacks,
            n_tasks_failed=self.stats.tasks_failed,
            n_checkpoints=self.stats.checkpoints_written,
            resumed_from_level=self.stats.resumed_from_level,
            batch_calls=self.stats.batch_calls,
            batched_candidates=self.stats.batched_candidates,
            batch_fallbacks=self.stats.batch_fallbacks,
            prune_rule_batched=dict(self.stats.prune_rule_batched),
        )

    def explain_prunes(self) -> str:
        """Per-rule pruning report (the CLI's ``--explain-prunes``)."""
        from .pipeline import format_prune_report

        return format_prune_report(self.stats)

    def meaningfulness(
        self, alpha: float | None = None
    ) -> MeaningfulnessReport:
        """Classify the result patterns (redundant / unproductive / not
        independently productive)."""
        alpha = self.config.alpha if alpha is None else alpha
        return classify_patterns(self.patterns, self.dataset, alpha)

    def meaningful(
        self, alpha: float | None = None
    ) -> list[ContrastPattern]:
        """Only the meaningful patterns (paper's headline output)."""
        return self.meaningfulness(alpha).meaningful_patterns()

    def __len__(self) -> int:
        return len(self.patterns)


class ContrastSetMiner:
    """Contrast-set miner for mixed data (SDAD-CS + meaningful filters)."""

    def __init__(self, config: MinerConfig | None = None) -> None:
        self.config = config or MinerConfig()

    def mine(
        self,
        dataset: Dataset,
        groups: Sequence[str] | None = None,
        attributes: Sequence[str] | None = None,
        n_jobs: int = 1,
        *,
        checkpoint_dir: "str | os.PathLike | None" = None,
        fault_plan: "FaultPlan | None" = None,
        store: "PatternStore | None" = None,
        store_tags: Sequence[str] = (),
    ) -> MiningResult:
        """Mine contrast patterns between groups of a dataset.

        Parameters
        ----------
        dataset:
            The data.  If it has more than the groups of interest, pass
            ``groups`` to narrow it first.
        groups:
            Optional pair (or more) of group labels to contrast; defaults
            to all groups in the dataset.
        attributes:
            Optional subset of attributes to search over; defaults to all.
        n_jobs:
            Number of worker processes.  ``1`` (the default) runs the
            serial engine; ``> 1`` routes through the level-parallel
            scheduler of :mod:`repro.parallel`, which can evaluate
            slightly more partitions (some cross-subtree pruning is lost
            within a level) while producing the same contrasts.
        checkpoint_dir:
            Persist the full between-levels state here after every
            completed level, for :meth:`resume`.  Checkpointing runs
            through the level-wise scheduler, so passing this with
            ``n_jobs=1`` still uses a (one-worker) pool; the patterns are
            identical to the serial engine's either way.
        fault_plan:
            Deterministic fault-injection plan
            (:class:`repro.resilience.FaultPlan`) — a test hook that
            crashes, hangs, poisons, or corrupts chosen worker tasks to
            exercise the retry/fallback machinery.
        store:
            Optional :class:`~repro.serve.PatternStore`: publish the
            finished run durably before returning.  The assigned run id
            lands in ``MiningResult.run_id`` so a pipeline can hand it
            straight to a :class:`~repro.serve.PatternServer`.
        store_tags:
            Free-form tags recorded with the stored run (only meaningful
            together with ``store``).
        """
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        from ..dataset.chunked import ChunkedDataset

        if isinstance(dataset, ChunkedDataset):
            # Mine an out-of-core store through its lazy Dataset facade:
            # same search, same statistics, chunk-aware counting.  The
            # view pins the store's current chunk list, so appends made
            # while this run is in flight do not shift its input.
            dataset = dataset.view()
        if groups is not None:
            dataset = dataset.select_groups(groups)
        if dataset.n_groups < 2:
            raise ValueError("contrast mining needs at least two groups")
        if n_jobs > 1 or checkpoint_dir is not None or fault_plan is not None:
            # imported lazily: repro.parallel pulls in multiprocessing
            # machinery serial users never need
            from ..parallel.scheduler import parallel_search

            topk, stats, n_workers = parallel_search(
                dataset,
                self.config,
                attributes,
                n_jobs,
                checkpoint_dir=checkpoint_dir,
                fault_plan=fault_plan,
            )
        else:
            engine = SearchEngine(dataset, self.config, attributes)
            with Stopwatch(engine.stats):
                topk = engine.run()
            stats, n_workers = engine.stats, 1
        result = MiningResult(
            patterns=topk.patterns(),
            interests=topk.interests(),
            stats=stats,
            config=self.config,
            dataset=dataset,
            n_workers=n_workers,
        )
        if store is not None:
            result.run_id = store.put(result, tags=store_tags)
        return result

    def resume(
        self,
        checkpoint: "str | os.PathLike",
        dataset: Dataset | None = None,
        n_jobs: int = 1,
        *,
        checkpoint_dir: "str | os.PathLike | None" = None,
    ) -> MiningResult:
        """Resume an interrupted run from a level-boundary checkpoint.

        ``checkpoint`` is a checkpoint file or a directory holding them
        (the deepest level wins).  The restored state — top-k list, alpha
        ladder, viable itemsets, pure registry, stats, prune table — is
        exactly what the interrupted run held between levels, so the
        completed result matches an uninterrupted run bit-for-bit
        (patterns *and* prune accounting).

        The checkpoint's own dataset snapshot is mined (it is part of the
        state); pass ``dataset`` to additionally assert the checkpoint
        belongs to the data you think it does.  A checkpoint written
        under a different :class:`MinerConfig` raises
        :class:`~repro.resilience.CheckpointError`.  Pass
        ``checkpoint_dir`` to keep writing new checkpoints while
        finishing the run.
        """
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        from ..parallel.scheduler import parallel_search
        from ..resilience.checkpoint import (
            ensure_compatible,
            load_checkpoint,
        )

        state = load_checkpoint(checkpoint)
        ensure_compatible(state, config=self.config, dataset=dataset)
        topk, stats, n_workers = parallel_search(
            state.dataset,
            self.config,
            state.attributes,
            n_jobs,
            checkpoint_dir=checkpoint_dir,
            resume_from=state,
        )
        return MiningResult(
            patterns=topk.patterns(),
            interests=topk.interests(),
            stats=stats,
            config=self.config,
            dataset=state.dataset,
            n_workers=n_workers,
        )
