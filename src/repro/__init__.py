"""repro — SDAD-CS contrast pattern mining for quantitative data.

Reproduction of Khade, Lin & Patel, *Finding Meaningful Contrast Patterns
for Quantitative Data*, EDBT 2019.

Quickstart::

    from repro import ContrastSetMiner, MinerConfig
    from repro.dataset.synthetic import simulated_dataset_2

    data = simulated_dataset_2()
    miner = ContrastSetMiner(MinerConfig(interest_measure="surprising"))
    result = miner.mine(data)
    for pattern in result.top(10):
        print(pattern.describe())
"""

from .core.config import MinerConfig
from .core.contrast import ContrastPattern
from .core.items import CategoricalItem, Interval, Itemset, NumericItem
from .core.miner import ContrastSetMiner, MiningResult, MiningSummary
from .core.pipeline import EvaluationContext, PruneRule, PruningPipeline
from .core.sdad import sdad_cs
from .dataset.chunked import ChunkedDataset, ChunkedView
from .dataset.schema import Attribute, AttributeKind, Schema
from .dataset.table import Dataset
from .resilience import CheckpointError, ResiliencePolicy
from .serve import (
    PatternServer,
    PatternStore,
    Query,
    ServeConfig,
    StoreError,
)

__version__ = "1.5.0"

__all__ = [
    "MinerConfig",
    "ContrastPattern",
    "CategoricalItem",
    "Interval",
    "Itemset",
    "NumericItem",
    "ContrastSetMiner",
    "MiningResult",
    "MiningSummary",
    "EvaluationContext",
    "PruneRule",
    "PruningPipeline",
    "sdad_cs",
    "Attribute",
    "AttributeKind",
    "Schema",
    "Dataset",
    "ChunkedDataset",
    "ChunkedView",
    "CheckpointError",
    "ResiliencePolicy",
    "PatternStore",
    "PatternServer",
    "Query",
    "ServeConfig",
    "StoreError",
    "__version__",
]
