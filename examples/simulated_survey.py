"""Survey of the four simulated datasets (Sections 5.1-5.4, Figure 3).

For each simulated dataset, runs SDAD-CS and the three baselines and
prints the bin boundaries each algorithm discovers, annotated with the
claim from the paper that the dataset was designed to test.

Run:  python examples/simulated_survey.py
"""

from __future__ import annotations

from repro import MinerConfig
from repro.analysis import pattern_table, run_algorithm
from repro.dataset import synthetic

CLAIMS = {
    "simulated_dataset_1": (
        "Separable along Attribute 1 only (PR = 1): SDAD-CS should find "
        "just the level-1 boundary; MVD chases the correlation instead."
    ),
    "simulated_dataset_2": (
        "An 'X' of two Gaussians: no univariate rule exists; the contrast "
        "only appears when both attributes are combined."
    ),
    "simulated_dataset_3": (
        "Uniform square split at Attribute 1 = 0.5: level-1 contrasts "
        "only; deeper patterns are meaningless."
    ),
    "simulated_dataset_4": (
        "Group 2 lives in two corner boxes: level-2 interactions; the "
        "level-1 projections are not independently productive."
    ),
}


def main() -> None:
    config = MinerConfig(k=20, interest_measure="surprising")
    for name, claim in CLAIMS.items():
        dataset = getattr(synthetic, name)()
        print("=" * 78)
        print(f"{name}: {claim}")
        print("=" * 78)
        for algorithm in ("sdad", "mvd", "entropy", "cortana"):
            result = run_algorithm(algorithm, dataset, config)
            print(
                pattern_table(
                    result.top(4),
                    title=f"{result.name} ({len(result.patterns)} found)",
                )
            )
            print()


if __name__ == "__main__":
    main()
