"""Serve mined Adult patterns over HTTP: store -> publish -> query.

The full online lifecycle on the synthetic Adult stand-in (Doctorate vs
Bachelors, Section 5.5 of the paper):

1. mine the dataset and persist the run into a durable
   :class:`~repro.serve.PatternStore` (content-addressed, crash-safe);
2. start a :class:`~repro.serve.PatternServer` on an OS-assigned port
   and activate the stored run;
3. exercise every REST endpoint a monitoring dashboard would use —
   health, run listing, declarative pattern queries, point lookups for
   individual records, and the metrics counters — asserting along the
   way that no request is ever answered with a 5xx.

Run:  python examples/serve_adult.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
from pathlib import Path

from repro import ContrastSetMiner, MinerConfig
from repro.dataset import uci
from repro.serve import PatternServer, PatternStore, ServeConfig
from repro.serve.index import row_from_dataset


def _request(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request(
            method, path, body=None if body is None else json.dumps(body)
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status < 500, (path, payload)
        return response.status, payload
    finally:
        conn.close()


def main() -> None:
    dataset = uci.adult(scale=0.05)
    result = ContrastSetMiner(MinerConfig(max_tree_depth=2)).mine(dataset)
    print(
        f"mined {len(result.patterns)} patterns from {dataset.n_rows} "
        f"rows ({' vs '.join(dataset.group_labels)})"
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = PatternStore(Path(tmp) / "adult-store")
        run_id = store.put(result, tags=("example", "adult"))
        print(f"stored as {run_id}")

        with PatternServer(store, ServeConfig(port=0)) as server:
            server.publish_run(run_id)
            host, port = server.start()
            print(f"serving on http://{host}:{port}")

            status, health = _request(host, port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            print(f"healthz: active run {health['active_run']}")

            status, runs = _request(host, port, "GET", "/runs")
            assert status == 200
            print(f"runs: {[run['run_id'] for run in runs['runs']]}")

            status, meta = _request(host, port, "GET", f"/runs/{run_id}")
            assert status == 200
            print(
                f"run meta: {meta['n_patterns']} patterns, "
                f"library {meta['library_version']}"
            )

            status, top = _request(
                host,
                port,
                "GET",
                f"/runs/{run_id}/patterns?min_diff=0.1&limit=5",
            )
            assert status == 200
            print(f"\nTop patterns with support difference >= 0.1:")
            for entry in top["patterns"]:
                print(
                    f"  {entry['description']}  "
                    f"(interest {entry['interest']:.3f})"
                )

            row = row_from_dataset(dataset, 0)
            status, matched = _request(
                host, port, "POST", "/match", {"row": row}
            )
            assert status == 200
            print(
                f"\nrecord 0 is covered by {matched['count']} pattern(s) "
                f"of run {matched['run']}"
            )

            # a malformed query must come back 400, never 5xx
            status, error = _request(
                host, port, "GET", f"/runs/{run_id}/patterns?bogus=1"
            )
            assert status == 400, error

            status, metrics = _request(host, port, "GET", "/metrics")
            assert status == 200
            served = sum(
                stats["requests"]
                for stats in metrics["endpoints"].values()
            )
            print(f"\nmetrics: {served} requests served, no 5xx")
    print("done")


if __name__ == "__main__":
    main()
