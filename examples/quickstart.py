"""Quickstart: mine contrast patterns on a small mixed dataset.

Builds a 1,000-row dataset with one planted continuous contrast and one
planted categorical contrast, runs the full SDAD-CS pipeline, and prints
the raw top-k next to the meaningful (filtered) patterns.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.analysis import pattern_table


def build_dataset(n: int = 1000, seed: int = 42) -> Dataset:
    """Two groups; ``temperature`` and ``machine`` carry the signal."""
    rng = np.random.default_rng(seed)
    group = rng.integers(0, 2, n)  # 0 = pass, 1 = fail

    # failing parts run hot
    temperature = np.where(
        group == 1,
        rng.normal(82.0, 4.0, n),
        rng.normal(71.0, 5.0, n),
    )
    # machine M3 is over-represented among failures
    machine = np.where(
        group == 1,
        rng.choice(4, n, p=[0.15, 0.15, 0.60, 0.10]),
        rng.choice(4, n, p=[0.30, 0.30, 0.15, 0.25]),
    )
    pressure = rng.normal(30.0, 3.0, n)  # pure noise

    schema = Schema.of(
        [
            Attribute.continuous("temperature"),
            Attribute.continuous("pressure"),
            Attribute.categorical("machine", ["M1", "M2", "M3", "M4"]),
        ]
    )
    return Dataset(
        schema,
        {
            "temperature": temperature,
            "pressure": pressure,
            "machine": machine,
        },
        group,
        ["pass", "fail"],
    )


def main() -> None:
    dataset = build_dataset()
    print(f"Dataset: {dataset.describe()}\n")

    config = MinerConfig(
        delta=0.1,          # minimum support difference (Eq. 2)
        alpha=0.05,         # significance level (Eq. 3)
        k=20,               # keep the 20 best patterns
        interest_measure="support_difference",
    )
    result = ContrastSetMiner(config).mine(dataset)

    print(pattern_table(result.top(10), title="Top raw contrasts"))
    print()
    print(
        pattern_table(
            result.meaningful(),
            title="Meaningful contrasts (non-redundant, productive, "
            "independently productive)",
        )
    )
    print()
    stats = result.stats
    print(
        f"Cost: {stats.partitions_evaluated} partitions evaluated, "
        f"{stats.spaces_pruned} pruned, "
        f"{stats.elapsed_seconds:.2f}s"
    )


if __name__ == "__main__":
    main()
