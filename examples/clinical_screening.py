"""Clinical screening workflow: mine, validate on holdout, explain.

Uses the Breast Cancer and Mammography stand-ins to demonstrate a
responsible discovery workflow on diagnostic data:

1. split the data into train/holdout (stratified);
2. mine contrast patterns between benign and malignant cases on train;
3. re-test every pattern on the holdout and keep the survivors;
4. print a plain-language briefing of the validated findings.

Run:  python examples/clinical_screening.py
"""

from __future__ import annotations

from repro import ContrastSetMiner, MinerConfig
from repro.analysis import briefing, pattern_table, validate_patterns
from repro.dataset import uci
from repro.dataset.sampling import train_holdout_split


def screen(dataset, name: str) -> None:
    print("=" * 72)
    print(f"{name}: {dataset.describe()}")
    print("=" * 72)

    train, holdout = train_holdout_split(dataset, 0.35, seed=11)
    config = MinerConfig(
        delta=0.15,
        k=30,
        max_tree_depth=2,
        interest_measure="support_difference",
    )
    result = ContrastSetMiner(config).mine(train)
    meaningful = result.meaningful()
    print(
        f"mined {len(result)} patterns on {train.n_rows} training rows; "
        f"{len(meaningful)} meaningful"
    )

    validation = validate_patterns(
        meaningful, holdout, delta=config.delta, alpha=config.alpha
    )
    print(f"holdout validation: {validation.formatted()}")
    survivors = validation.survivors()

    print()
    print(
        pattern_table(
            survivors[:8],
            title=f"Validated contrasts ({name})",
        )
    )
    print()
    print(briefing(survivors, max_items=3, title="Clinical briefing"))
    print()


def main() -> None:
    screen(uci.breast_cancer(), "Breast Cancer (Wisconsin)")
    screen(uci.mammography(), "Mammographic masses")


if __name__ == "__main__":
    main()
