"""Decision tree vs contrast mining (the paper's Section 1 argument).

Two experiments on the same data:

1. **XOR**: a greedy tree gets no purchase at depth 1 (no single split
   improves purity), while SDAD-CS's joint space search finds the four
   pure boxes immediately.
2. **Pattern coverage**: on the manufacturing data, the fitted tree
   yields one greedy hierarchy (a handful of root-to-leaf paths), while
   the miner surfaces *all* the planted contrasts — including ones the
   tree's first split shadows.

Run:  python examples/tree_vs_mining.py
"""

from __future__ import annotations

import numpy as np

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.analysis import pattern_table
from repro.baselines.decision_tree import (
    DecisionTree,
    TreeConfig,
    tree_patterns,
)
from repro.core.items import Itemset
from repro.core.sdad import sdad_cs
from repro.dataset.manufacturing import manufacturing


def xor_experiment() -> None:
    print("=" * 70)
    print("Experiment 1: XOR data")
    print("=" * 70)
    rng = np.random.default_rng(21)
    n = 3000
    a = rng.uniform(0, 1, n)
    b = rng.uniform(0, 1, n)
    groups = ((a < 0.5) ^ (b < 0.5)).astype(np.int64)
    schema = Schema.of(
        [Attribute.continuous("a"), Attribute.continuous("b")]
    )
    ds = Dataset(schema, {"a": a, "b": b}, groups, ["even", "odd"])

    for depth in (1, 2, 4):
        tree = DecisionTree(TreeConfig(max_depth=depth)).fit(ds)
        print(
            f"  greedy tree depth {depth}: accuracy "
            f"{tree.accuracy(ds):.2f} ({tree.n_leaves()} leaves)"
        )

    result = sdad_cs(ds, Itemset(), ["a", "b"], MinerConfig(k=20))
    print(f"  SDAD-CS joint search: {len(result.patterns)} contrasts")
    for pattern in result.patterns[:4]:
        print(f"    {pattern.describe()}  PR={pattern.purity_ratio:.2f}")


def coverage_experiment() -> None:
    print("\n" + "=" * 70)
    print("Experiment 2: one greedy hierarchy vs all contrasts")
    print("=" * 70)
    ds = manufacturing(n_population=2000, n_failed=300)

    tree = DecisionTree(TreeConfig(max_depth=3)).fit(ds)
    paths = tree_patterns(tree, ds)
    print(
        f"  tree: accuracy {tree.accuracy(ds):.2f}, "
        f"{len(paths)} leaf-path patterns"
    )
    print(pattern_table(paths[:5], title="  Tree leaf paths (top 5)"))

    miner = ContrastSetMiner(MinerConfig(k=40, max_tree_depth=1))
    mined = miner.mine(ds).meaningful()
    print()
    print(pattern_table(mined[:8], title="  Mined meaningful contrasts"))

    tree_attrs = {a for p in paths for a in p.itemset.attributes}
    mined_attrs = {a for p in mined for a in p.itemset.attributes}
    only_mined = sorted(mined_attrs - tree_attrs)
    print(
        f"\n  signals surfaced by mining but absent from the tree's "
        f"paths: {only_mined}"
    )


def main() -> None:
    xor_experiment()
    coverage_experiment()


if __name__ == "__main__":
    main()
