"""Streaming monitoring: catch a process drift as it happens.

The paper's motivation (Section 1): "a timely notice could minimize
potential loss" when, e.g., the ovens run hot for a batch.  This example
simulates a manufacturing line streaming part records; mid-stream, one
oven lane starts running hot and failures concentrate there.  The
streaming miner re-mines its sliding window and reports the *emerged*
contrast within a few batches of the drift.

Run:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro import Attribute, MinerConfig, Schema
from repro.streaming import StreamingContrastMiner

SCHEMA = Schema.of(
    [
        Attribute.continuous("oven_temp"),
        Attribute.continuous("pressure"),
        Attribute.categorical("lane", ["L1", "L2", "L3"]),
    ]
)
GROUPS = ("pass", "fail")


def make_batch(rng, n, drifted: bool):
    """One batch of part records; after the drift, lane L3 runs hot and
    its hot parts fail."""
    lane = rng.integers(0, 3, n)
    temp = rng.normal(250.0, 3.0, n)
    fail = rng.uniform(0, 1, n) < 0.06  # base failure rate
    if drifted:
        hot = (lane == 2) & (rng.uniform(0, 1, n) < 0.8)
        temp = np.where(hot, rng.normal(258.0, 1.5, n), temp)
        fail = fail | (hot & (rng.uniform(0, 1, n) < 0.55))
    return (
        {
            "oven_temp": temp,
            "pressure": rng.normal(30.0, 2.0, n),
            "lane": lane,
        },
        fail.astype(np.int64),
    )


def main() -> None:
    rng = np.random.default_rng(99)
    miner = StreamingContrastMiner(
        SCHEMA,
        GROUPS,
        config=MinerConfig(k=10, max_tree_depth=2, delta=0.1),
        window_size=4000,
        refresh_every=1000,
        min_rows=1000,
    )

    drift_at = 6
    for batch_no in range(1, 13):
        drifted = batch_no >= drift_at
        update = miner.update(*make_batch(rng, 1000, drifted))
        status = "refresh" if update.refreshed else "buffer"
        line = (
            f"batch {batch_no:>2} ({'HOT' if drifted else 'ok '}): "
            f"{status}, window={update.window_rows}, "
            f"{len(update.patterns)} contrasts"
        )
        print(line)
        for pattern in update.emerged:
            print(f"    EMERGED: {pattern.describe()}")
        for pattern in update.vanished:
            print(f"    vanished: {pattern.itemset}")

    print("\nFinal window contrasts:")
    for pattern in miner.current_patterns:
        print(f"  {pattern.describe()}")


if __name__ == "__main__":
    main()
