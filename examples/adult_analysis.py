"""The paper's Adult case study (Section 5.5): Doctorate vs Bachelors.

Reproduces the analysis pipeline behind Table 1 and Figure 4 on the
synthetic Adult stand-in:

1. mine with SDAD-CS under two interest measures (PR and support
   difference) and show how the discovered age / hours-per-week bins
   differ;
2. print the Figure 4-style equal-frequency histograms of group support
   and purity ratio;
3. contrast the output with the Cortana baseline's bins.

Run:  python examples/adult_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import ContrastSetMiner, MinerConfig
from repro.analysis import pattern_table, supports_histogram
from repro.analysis.algorithms import run_cortana
from repro.baselines.discretizers import Binning, equal_frequency_cuts
from repro.dataset import uci


def figure4_histogram(dataset, attribute: str, n_bins: int = 10) -> str:
    """Per-bin group supports + purity over equal-frequency bins."""
    values = dataset.column(attribute)
    cuts = equal_frequency_cuts(values, n_bins)
    binning = Binning(
        attribute, cuts, float(values.min()), float(values.max())
    )
    ids = binning.assign(values)
    labels = binning.labels()
    supports = {label: [] for label in dataset.group_labels}
    purity = []
    for b in range(binning.n_bins):
        per_group = dataset.supports(ids == b)
        for label, supp in zip(dataset.group_labels, per_group):
            supports[label].append(float(supp))
        hi, lo = max(per_group), min(per_group)
        purity.append(1.0 - (lo / hi) if hi > 0 else 0.0)
    return supports_histogram(
        labels,
        supports,
        purity,
        title=f"Figure 4 style histogram: {attribute}",
    )


def main() -> None:
    dataset = uci.adult()
    print(f"Dataset: {dataset.describe()}\n")

    focus = ["age", "hours-per-week"]

    print(figure4_histogram(dataset, "age"))
    print()
    print(figure4_histogram(dataset, "hours-per-week"))
    print()

    for measure in ("purity_ratio", "support_difference"):
        config = MinerConfig(
            k=20, interest_measure=measure, max_tree_depth=2
        )
        result = ContrastSetMiner(config).mine(
            dataset, attributes=focus
        )
        print(
            pattern_table(
                result.meaningful(),
                title=f"SDAD-CS with {measure} (age, hours-per-week)",
                max_rows=8,
            )
        )
        print()

    cortana_result = run_cortana(
        dataset.project(focus), MinerConfig(k=20, max_tree_depth=2)
    )
    print(
        pattern_table(
            cortana_result.top(6),
            title="Cortana-style subgroup discovery (for comparison)",
        )
    )


if __name__ == "__main__":
    main()
