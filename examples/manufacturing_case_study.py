"""Section 6 case study: finding the cause of final-test failures.

A synthetic high-volume packaging/test dataset (148 attributes) carries a
planted failure mechanism — the rear lane of chip-attach module "SCE" runs
hot.  The example mines population-vs-failed contrasts, filters them to the
meaningful set, and prints the Table 7-style report an engineer would act
on, plus the level-parallel scaling run the paper describes.

Run:  python examples/manufacturing_case_study.py
"""

from __future__ import annotations

import time

from repro import ContrastSetMiner, MinerConfig
from repro.analysis import briefing, pattern_table
from repro.dataset.manufacturing import manufacturing, scaling_dataset


def main() -> None:
    dataset = manufacturing()
    print(f"Dataset: {dataset.describe()}\n")

    config = MinerConfig(
        delta=0.1,
        alpha=0.05,
        k=40,
        max_tree_depth=2,
        interest_measure="support_difference",
    )
    result = ContrastSetMiner(config).mine(dataset)
    meaningful = result.meaningful()

    print(
        pattern_table(
            meaningful,
            title="Contrast sets for manufacturing data (Table 7 style)",
            max_rows=12,
        )
    )
    print()
    print(
        f"Raw patterns: {len(result)}, meaningful: {len(meaningful)}; "
        f"{result.stats.partitions_evaluated} partitions evaluated in "
        f"{result.stats.elapsed_seconds:.1f}s"
    )

    # The engineer's readout: which planted signals were surfaced?
    planted = {
        "CAM entity",
        "Placement tool",
        "CAM row location",
        "CAM time above liquidus",
        "CAM Peak temperature",
        "CAM peak temp std",
        "Die temp above std",
    }
    surfaced = {
        attr
        for pattern in meaningful
        for attr in pattern.itemset.attributes
    }
    print(f"Planted failure signals surfaced: {sorted(surfaced & planted)}")

    # The engineer-facing readout (plain language, ranked, grouped)
    print()
    print(
        briefing(
            meaningful,
            max_items=4,
            title="Engineer briefing: what distinguishes the failures?",
        )
    )

    # --- parallel scaling (Section 6) ---------------------------------
    print("\nLevel-parallel scaling run (Section 6 strategy):")
    trace = scaling_dataset(20_000, n_features=40)
    t0 = time.perf_counter()
    parallel = ContrastSetMiner(
        MinerConfig(k=20, max_tree_depth=2)
    ).mine(trace, n_jobs=4)
    elapsed = time.perf_counter() - t0
    print(
        f"  {trace.n_rows} rows x {len(trace.schema)} features: "
        f"{len(parallel.patterns)} contrasts, "
        f"{parallel.stats.partitions_evaluated} partitions, "
        f"{elapsed:.1f}s on {parallel.n_workers} workers"
    )


if __name__ == "__main__":
    main()
