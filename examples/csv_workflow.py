"""Bring-your-own-data workflow: CSV in, contrast report out.

Shows the end-to-end path a downstream user takes with their own data:
write a CSV (here: generated), load it with schema inference, narrow to
the two groups of interest, mine, and render the report.

Run:  python examples/csv_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Attribute, ContrastSetMiner, Dataset, MinerConfig, Schema
from repro.analysis import pattern_table
from repro.dataset.io import read_csv, write_csv


def make_csv(path: Path) -> None:
    """Simulate an ops export with three shifts, one of which misbehaves."""
    rng = np.random.default_rng(11)
    n = 1500
    shift = rng.choice(3, n, p=[0.4, 0.4, 0.2])
    # night shift (2) produces slow responses when load is high
    load = rng.uniform(0, 100, n)
    latency = rng.lognormal(3.0, 0.3, n)
    slow = (shift == 2) & (load > 60)
    latency[slow] *= 2.5
    outcome = np.where(
        latency > np.quantile(latency, 0.8), "breach", "ok"
    )
    schema = Schema.of(
        [
            Attribute.categorical("shift", ["day", "evening", "night"]),
            Attribute.continuous("load"),
            Attribute.continuous("latency_ms"),
        ]
    )
    dataset = Dataset(
        schema,
        {"shift": shift, "load": load, "latency_ms": latency},
        np.where(outcome == "breach", 1, 0),
        ["ok", "breach"],
        group_name="sla",
    )
    write_csv(dataset, path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ops_export.csv"
        make_csv(path)

        dataset = read_csv(path, group_column="sla")
        print(f"Loaded: {dataset.describe()}\n")

        config = MinerConfig(k=15, max_tree_depth=2)
        result = ContrastSetMiner(config).mine(
            dataset, groups=("ok", "breach"),
            attributes=["shift", "load"],
        )
        print(
            pattern_table(
                result.meaningful(),
                title="What distinguishes SLA breaches?",
            )
        )


if __name__ == "__main__":
    main()
